//! The thread-based testbed runtime.
//!
//! The paper validates its simulator against a 16×A100 cluster where the
//! controller, load balancer, and workers are separate processes talking
//! over gRPC (§4.1). This module reproduces that architecture at
//! thread-and-channel scale: a client thread replays the trace, worker
//! threads batch and "execute" queries by sleeping the profiled latency
//! (scaled by [`ClusterConfig::time_scale`]), escalations travel over
//! channels, and a controller thread re-solves the allocation periodically.
//! The Fig. 6 experiment compares its measurements with the simulator's —
//! the paper reports a 0.56% FID / 1.1% SLO-violation gap between the two.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use diffserve_core::{
    overload_fallback, solve_exhaustive, solve_proteus, AllocatorInputs, CascadeRuntime,
    CompletedResponse, ModelTier, Policy, QueryId, RunReport, RunSettings, SystemConfig,
};
use diffserve_metrics::{SloTracker, WindowedSeries};
use diffserve_simkit::prelude::*;
use diffserve_trace::{
    poisson_arrivals, CapacityEvent, DemandEstimator, Scenario, ScenarioEvent, Trace,
};
use parking_lot::RwLock;
use rand::Rng;

use crate::plan::ServingPlan;

/// Cluster-runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// The shared system configuration (workers, SLO, controller settings).
    pub system: SystemConfig,
    /// Wall-clock seconds per simulated second. `0.02` runs a 350 s trace
    /// in 7 s while keeping all latency ratios intact.
    pub time_scale: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            system: SystemConfig::default(),
            time_scale: 0.02,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Job {
    qid: u64,
    arrival: f64,  // sim seconds
    deadline: f64, // sim seconds
}

struct Shared {
    plan: RwLock<ServingPlan>,
    depths: Vec<AtomicUsize>,
    arrivals_since_tick: AtomicU64,
    heavy_since_tick: AtomicU64,
    shutdown: AtomicBool,
    start: Instant,
    scale: f64,
    /// Scenario fail-stop flags, one per worker.
    failed: Vec<AtomicBool>,
    /// Active prompt-difficulty offset (f64 bits), set by the scenario
    /// thread and read by workers at generation time.
    difficulty_bits: AtomicU64,
}

impl Shared {
    fn sim_now(&self) -> f64 {
        self.start.elapsed().as_secs_f64() / self.scale
    }

    fn sleep_sim(&self, sim_secs: f64) {
        if sim_secs > 0.0 {
            thread::sleep(Duration::from_secs_f64(sim_secs * self.scale));
        }
    }

    fn is_failed(&self, i: usize) -> bool {
        self.failed[i].load(Ordering::Relaxed)
    }

    fn difficulty_delta(&self) -> f64 {
        f64::from_bits(self.difficulty_bits.load(Ordering::Relaxed))
    }

    /// Whether any alive worker is assigned the heavy model — when churn
    /// wipes the heavy pool out, escalations would bounce between light
    /// workers forever (generation is deterministic), so callers serve the
    /// light output instead.
    fn has_alive_heavy(&self) -> bool {
        let plan = self.plan.read();
        plan.tiers
            .iter()
            .enumerate()
            .any(|(i, &t)| t == ModelTier::Heavy && !self.is_failed(i))
    }

    /// JSQ among alive workers currently assigned to `tier`.
    fn pick_worker(&self, tier: ModelTier) -> usize {
        let plan = self.plan.read();
        let mut best: Option<(usize, usize)> = None;
        for (i, &t) in plan.tiers.iter().enumerate() {
            if t != tier || self.is_failed(i) {
                continue;
            }
            let d = self.depths[i].load(Ordering::Relaxed);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, i));
            }
        }
        match best {
            Some((_, i)) => i,
            // No alive worker currently on that tier (mid-reconfiguration
            // or tier wiped out by churn): fall back to the least-loaded
            // alive worker. Scenario validation guarantees one exists.
            None => {
                let mut idx = usize::MAX;
                let mut min = usize::MAX;
                for (i, d) in self.depths.iter().enumerate() {
                    if self.is_failed(i) {
                        continue;
                    }
                    let v = d.load(Ordering::Relaxed);
                    if v < min {
                        min = v;
                        idx = i;
                    }
                }
                assert_ne!(idx, usize::MAX, "at least one worker must be alive");
                idx
            }
        }
    }
}

enum Outcome {
    Completed(CompletedResponse),
    Dropped { arrival: f64, at: f64 },
}

/// Runs one policy on the thread-based cluster and reports the same
/// metrics as the simulator.
///
/// Supports every policy in Table 1. The run blocks the calling thread for
/// roughly `trace.duration × time_scale` wall-clock time plus a drain
/// period. Equivalent to [`run_cluster_scenario`] with a perturbation-free
/// scenario.
///
/// # Panics
///
/// Panics if the configuration is invalid or `time_scale` is not positive.
pub fn run_cluster(
    runtime: &CascadeRuntime,
    config: &ClusterConfig,
    settings: &RunSettings,
    trace: &Trace,
) -> RunReport {
    run_cluster_scenario(
        runtime,
        config,
        settings,
        &Scenario::new("trace", trace.clone()),
    )
}

/// Runs one policy on the thread-based cluster under a [`Scenario`] — the
/// parity path to `diffserve_core::run_scenario`, so one `Scenario` value
/// drives both the discrete-event simulator and this testbed.
///
/// Demand perturbations are baked into the replayed arrival stream;
/// worker churn and difficulty shifts are applied live by a scenario thread
/// (failed workers re-route their queues and idle until recovery, paying
/// the model load delay when they rejoin). One parity caveat: failure
/// granularity here is the batch boundary — a worker already executing a
/// batch delivers it before going down, while the simulator's fail-stop
/// kills in-flight work instantly and retries it elsewhere.
///
/// # Panics
///
/// Panics if the configuration is invalid, `time_scale` is not positive, or
/// the scenario fails [`Scenario::validate`] for this worker count.
pub fn run_cluster_scenario(
    runtime: &CascadeRuntime,
    config: &ClusterConfig,
    settings: &RunSettings,
    scenario: &Scenario,
) -> RunReport {
    config.system.validate().expect("valid system config");
    assert!(
        config.time_scale > 0.0 && config.time_scale.is_finite(),
        "time scale must be positive"
    );
    let sys = &config.system;
    let n = sys.num_workers;
    scenario
        .validate(n)
        .expect("valid scenario for this worker pool");
    let trace = scenario.effective_trace();
    let trace = &trace;

    // Arrival stream, identical to the simulator's generation.
    let mut arrival_rng = seeded_rng(derive_seed(sys.seed, 0xA881));
    let arrivals = poisson_arrivals(trace, &mut arrival_rng);

    let shared = Arc::new(Shared {
        plan: RwLock::new(bootstrap_plan(runtime, sys, settings, trace)),
        depths: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        arrivals_since_tick: AtomicU64::new(0),
        heavy_since_tick: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        start: Instant::now(),
        scale: config.time_scale,
        failed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        difficulty_bits: AtomicU64::new(0.0f64.to_bits()),
    });

    let (job_txs, job_rxs): (Vec<Sender<Job>>, Vec<Receiver<Job>>) =
        (0..n).map(|_| unbounded()).unzip();
    let job_txs = Arc::new(job_txs);
    let (done_tx, done_rx) = unbounded::<Outcome>();

    // --- Worker threads -------------------------------------------------
    let mut handles = Vec::new();
    for (wid, rx) in job_rxs.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        let txs = Arc::clone(&job_txs);
        let done = done_tx.clone();
        let rt = runtime.clone();
        let uses_cascade = settings.policy.uses_cascade();
        let drop_misses = sys.drop_predicted_misses;
        let switch_delay = sys.model_switch_delay.as_secs_f64();
        handles.push(thread::spawn(move || {
            worker_loop(
                wid,
                &shared,
                &rx,
                &txs,
                &done,
                &rt,
                uses_cascade,
                drop_misses,
                switch_delay,
            );
        }));
    }
    drop(done_tx);

    // --- Controller thread ------------------------------------------------
    let controller = {
        let shared = Arc::clone(&shared);
        let rt = runtime.clone();
        let sys = sys.clone();
        let settings = settings.clone();
        thread::spawn(move || controller_loop(&shared, &rt, &sys, &settings))
    };

    // --- Scenario thread (worker churn, difficulty shifts) ----------------
    let scenario_thread = {
        let shared = Arc::clone(&shared);
        let actions = scenario.timeline();
        thread::spawn(move || scenario_loop(&shared, &actions))
    };

    // --- Client (this thread replays the trace) ---------------------------
    let slo_secs = sys.slo.as_secs_f64();
    let mut route_rng = seeded_rng(derive_seed(sys.seed, 0x20C7));
    let mut demand_track = WindowedSeries::new(sys.metrics_window);
    for (i, t) in arrivals.iter().enumerate() {
        let at = t.as_secs_f64();
        let now = shared.sim_now();
        if at > now {
            shared.sleep_sim(at - now);
        }
        let now = shared.sim_now();
        demand_track.push(SimTime::from_secs_f64(at), 1.0);
        shared.arrivals_since_tick.fetch_add(1, Ordering::Relaxed);
        let tier = match settings.policy {
            Policy::ClipperLight => ModelTier::Light,
            Policy::ClipperHeavy => ModelTier::Heavy,
            Policy::Proteus => {
                let frac = shared.plan.read().threshold; // Proteus reuses slot
                if route_rng.gen_range(0.0..1.0) < frac {
                    shared.heavy_since_tick.fetch_add(1, Ordering::Relaxed);
                    ModelTier::Heavy
                } else {
                    ModelTier::Light
                }
            }
            _ => ModelTier::Light,
        };
        let w = shared.pick_worker(tier);
        shared.depths[w].fetch_add(1, Ordering::Relaxed);
        job_txs[w]
            .send(Job {
                qid: i as u64,
                arrival: now,
                deadline: now + slo_secs,
            })
            .expect("worker channels outlive the client");
    }

    // Drain, then shut down.
    shared.sleep_sim(4.0 * slo_secs);
    shared.shutdown.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    controller.join().expect("controller thread panicked");
    scenario_thread.join().expect("scenario thread panicked");

    // --- Collect ----------------------------------------------------------
    let mut slo_tracker = SloTracker::new(sys.slo);
    let mut responses = Vec::new();
    while let Ok(outcome) = done_rx.try_recv() {
        match outcome {
            Outcome::Completed(r) => {
                slo_tracker.record_completion(r.arrival, r.completion);
                responses.push(r);
            }
            Outcome::Dropped { arrival, at } => {
                slo_tracker
                    .record_drop(SimTime::from_secs_f64(arrival), SimTime::from_secs_f64(at));
            }
        }
    }
    let total = arrivals.len() as u64;
    // Jobs stuck in closed channels at shutdown count as drops.
    let accounted = slo_tracker.total();
    for _ in accounted..total {
        let end = shared.sim_now();
        slo_tracker.record_drop(SimTime::from_secs_f64(end), SimTime::from_secs_f64(end));
    }

    RunReport::assemble(
        settings.policy,
        total,
        &slo_tracker,
        &responses,
        &runtime.reference,
        sys.metrics_window,
        demand_track
            .window_rates()
            .into_iter()
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect(),
        Vec::new(), // threshold series tracked only by the controller
    )
}

fn bootstrap_plan(
    runtime: &CascadeRuntime,
    sys: &SystemConfig,
    settings: &RunSettings,
    trace: &Trace,
) -> ServingPlan {
    let mut plan = ServingPlan::bootstrap(sys.num_workers);
    match settings.policy {
        Policy::ClipperLight => {
            plan.tiers = vec![ModelTier::Light; sys.num_workers];
            plan.light_batch = clipper_batch(runtime, sys, ModelTier::Light, true);
        }
        Policy::ClipperHeavy => {
            plan.tiers = vec![ModelTier::Heavy; sys.num_workers];
            plan.heavy_batch = clipper_batch(runtime, sys, ModelTier::Heavy, false);
        }
        Policy::DiffServeStatic => {
            let demand = settings.peak_demand_hint.max(trace.max_qps()) * sys.over_provision;
            apply_solved(
                &mut plan,
                runtime,
                sys,
                settings,
                demand,
                0.0,
                0.0,
                sys.num_workers,
                &[],
            );
        }
        Policy::DiffServe | Policy::Proteus => {
            apply_solved(
                &mut plan,
                runtime,
                sys,
                settings,
                1.0,
                0.0,
                0.0,
                sys.num_workers,
                &[],
            );
        }
    }
    plan
}

fn clipper_batch(
    runtime: &CascadeRuntime,
    sys: &SystemConfig,
    tier: ModelTier,
    with_disc: bool,
) -> usize {
    let budget = sys.slo.as_secs_f64() / 2.0;
    let lat = |b: usize| -> f64 {
        let model = match tier {
            ModelTier::Light => &runtime.spec.light,
            ModelTier::Heavy => &runtime.spec.heavy,
        };
        let disc = if with_disc {
            runtime.discriminator.latency().as_secs_f64() * b as f64
        } else {
            0.0
        };
        model.latency().exec_latency(b).as_secs_f64() + disc
    };
    sys.batch_sizes
        .iter()
        .copied()
        .filter(|&b| lat(b) <= budget)
        .max()
        .unwrap_or(1)
}

#[allow(clippy::too_many_arguments)]
fn apply_solved(
    plan: &mut ServingPlan,
    runtime: &CascadeRuntime,
    sys: &SystemConfig,
    settings: &RunSettings,
    demand: f64,
    q1: f64,
    q2: f64,
    total_workers: usize,
    excluded: &[bool],
) {
    let thresholds = match settings.knobs.static_threshold {
        Some(t) => vec![t],
        None => sys.threshold_grid(),
    };
    let inputs = AllocatorInputs {
        demand_qps: demand,
        queue_delay_light: q1,
        queue_delay_heavy: q2,
        slo: sys.slo.as_secs_f64(),
        total_workers,
        deferral: &runtime.deferral,
        light: *runtime.spec.light.latency(),
        heavy: *runtime.spec.heavy.latency(),
        discriminator_latency: if settings.policy.uses_cascade() {
            runtime.discriminator.latency().as_secs_f64()
        } else {
            0.0
        },
        batch_sizes: &sys.batch_sizes,
        thresholds: &thresholds,
    };
    match settings.policy {
        Policy::Proteus => {
            if let Some((alloc, frac)) = solve_proteus(&inputs) {
                plan.retarget_masked(alloc.light_workers, alloc.heavy_workers, excluded);
                plan.light_batch = alloc.light_batch;
                plan.heavy_batch = alloc.heavy_batch;
                plan.threshold = frac; // heavy fraction rides in this slot
            }
        }
        _ => {
            let alloc = solve_exhaustive(&inputs).unwrap_or_else(|| overload_fallback(&inputs));
            plan.retarget_masked(alloc.light_workers, alloc.heavy_workers, excluded);
            plan.light_batch = alloc.light_batch;
            plan.heavy_batch = alloc.heavy_batch;
            plan.threshold = alloc.threshold;
        }
    }
}

/// Applies the scenario's timed actions against live shared state: fail
/// flags (highest-indexed alive workers fail, lowest-indexed failed workers
/// recover — mirroring the simulator) and the difficulty offset. Sleeps in
/// short slices so shutdown (or a perturbation scheduled past the trace
/// end) never wedges the run at join time.
fn scenario_loop(shared: &Shared, actions: &[(SimTime, ScenarioEvent)]) {
    for &(at, action) in actions {
        let at = at.as_secs_f64();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let now = shared.sim_now();
            if at <= now {
                break;
            }
            shared.sleep_sim((at - now).min(1.0));
        }
        let n = shared.failed.len();
        match action {
            ScenarioEvent::Capacity(CapacityEvent::Fail(count)) => {
                let mut remaining = count;
                for i in (0..n).rev() {
                    if remaining == 0 {
                        break;
                    }
                    if !shared.is_failed(i) {
                        shared.failed[i].store(true, Ordering::SeqCst);
                        remaining -= 1;
                    }
                }
            }
            ScenarioEvent::Capacity(CapacityEvent::Recover(count)) => {
                let mut remaining = count;
                for flag in &shared.failed {
                    if remaining == 0 {
                        break;
                    }
                    if flag.load(Ordering::SeqCst) {
                        flag.store(false, Ordering::SeqCst);
                        remaining -= 1;
                    }
                }
            }
            ScenarioEvent::Difficulty(delta) => {
                shared
                    .difficulty_bits
                    .store(delta.to_bits(), Ordering::SeqCst);
            }
        }
    }
}

fn controller_loop(
    shared: &Shared,
    runtime: &CascadeRuntime,
    sys: &SystemConfig,
    settings: &RunSettings,
) {
    if !settings.policy.is_dynamic() {
        return; // Static policies never re-plan.
    }
    let interval = sys.control_interval.as_secs_f64();
    let mut demand = DemandEstimator::new(sys.ewma_alpha, sys.over_provision);
    while !shared.shutdown.load(Ordering::SeqCst) {
        shared.sleep_sim(interval);
        let arrived = shared.arrivals_since_tick.swap(0, Ordering::Relaxed);
        let heavy = shared.heavy_since_tick.swap(0, Ordering::Relaxed);
        demand.observe(arrived, sys.control_interval);
        let d = demand.provisioned_estimate().max(0.5);

        // Little's-law queue estimates from live channel depths (alive
        // workers only — failed workers drain their queues elsewhere).
        let plan_snapshot = shared.plan.read().clone();
        let excluded: Vec<bool> = (0..plan_snapshot.tiers.len())
            .map(|i| shared.is_failed(i))
            .collect();
        let mut light_q = 0usize;
        let mut heavy_q = 0usize;
        for (i, &t) in plan_snapshot.tiers.iter().enumerate() {
            if excluded[i] {
                continue;
            }
            let depth = shared.depths[i].load(Ordering::Relaxed);
            match t {
                ModelTier::Light => light_q += depth,
                ModelTier::Heavy => heavy_q += depth,
            }
        }
        let heavy_rate = (heavy as f64 / interval).max(0.05);
        let q1 = light_q as f64 / d.max(0.05);
        let q2 = heavy_q as f64 / heavy_rate;

        let mut plan = plan_snapshot;
        // Derive the pool size from the same snapshot as the mask so the
        // solver and retarget never disagree mid-churn.
        let alive = excluded.iter().filter(|&&e| !e).count();
        apply_solved(
            &mut plan, runtime, sys, settings, d, q1, q2, alive, &excluded,
        );
        *shared.plan.write() = plan;
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    wid: usize,
    shared: &Shared,
    rx: &Receiver<Job>,
    txs: &[Sender<Job>],
    done: &Sender<Outcome>,
    runtime: &CascadeRuntime,
    uses_cascade: bool,
    drop_misses: bool,
    switch_delay: f64,
) {
    let mut current_tier = shared.plan.read().tiers[wid];
    let mut was_failed = false;
    let poll = Duration::from_secs_f64((0.02 * shared.scale).max(0.0002));
    loop {
        // Scenario fail-stop: re-route anything queued here to surviving
        // workers and idle until recovery (or shutdown).
        if shared.failed[wid].load(Ordering::SeqCst) {
            was_failed = true;
            while let Ok(job) = rx.try_recv() {
                shared.depths[wid].fetch_sub(1, Ordering::Relaxed);
                let target = shared.pick_worker(current_tier);
                shared.depths[target].fetch_add(1, Ordering::Relaxed);
                let _ = txs[target].send(job);
            }
            if shared.shutdown.load(Ordering::SeqCst) && rx.is_empty() {
                return;
            }
            thread::sleep(poll);
            continue;
        }
        if was_failed {
            // Rejoining the pool: reload model weights before serving.
            was_failed = false;
            shared.sleep_sim(switch_delay);
            current_tier = shared.plan.read().tiers[wid];
        }

        // Follow the plan: switch models if reassigned.
        let desired = shared.plan.read().tiers[wid];
        if desired != current_tier {
            shared.sleep_sim(switch_delay);
            current_tier = desired;
        }
        let bmax = shared.plan.read().batch_for(current_tier).max(1);

        // Collect a batch: block briefly for the first job, then take
        // whatever else is queued (Clipper-style no-wait batching). The
        // poll must be fine relative to *simulated* time or idle polling
        // inflates queueing delays for sub-100ms models like SDXS.
        let first = match rx.recv_timeout(poll) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) && rx.is_empty() {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        shared.depths[wid].fetch_sub(1, Ordering::Relaxed);
        let mut batch = vec![first];
        while batch.len() < bmax {
            match rx.try_recv() {
                Ok(job) => {
                    shared.depths[wid].fetch_sub(1, Ordering::Relaxed);
                    batch.push(job);
                }
                Err(_) => break,
            }
        }

        // Drop-front policy.
        if drop_misses {
            let now = shared.sim_now();
            let exec = stage_latency(runtime, current_tier, batch.len(), uses_cascade);
            batch.retain(|job| {
                if now + exec > job.deadline {
                    let _ = done.send(Outcome::Dropped {
                        arrival: job.arrival,
                        at: now,
                    });
                    false
                } else {
                    true
                }
            });
            if batch.is_empty() {
                continue;
            }
        }

        // "Execute" the batch.
        let exec = stage_latency(runtime, current_tier, batch.len(), uses_cascade);
        shared.sleep_sim(exec);
        let now = shared.sim_now();
        let threshold = shared.plan.read().threshold;

        for job in batch {
            let prompt = runtime
                .dataset
                .prompt_cyclic(job.qid)
                .harder(shared.difficulty_delta());
            match current_tier {
                ModelTier::Light => {
                    let image = runtime.spec.light.generate(&prompt);
                    if uses_cascade {
                        let conf = runtime.discriminator.confidence(&image.features);
                        if conf >= threshold || !shared.has_alive_heavy() {
                            let _ = done.send(Outcome::Completed(make_response(
                                job,
                                image,
                                ModelTier::Light,
                                Some(conf),
                                now,
                            )));
                        } else {
                            shared.heavy_since_tick.fetch_add(1, Ordering::Relaxed);
                            let target = shared.pick_worker(ModelTier::Heavy);
                            shared.depths[target].fetch_add(1, Ordering::Relaxed);
                            let _ = txs[target].send(job);
                        }
                    } else {
                        let _ = done.send(Outcome::Completed(make_response(
                            job,
                            image,
                            ModelTier::Light,
                            None,
                            now,
                        )));
                    }
                }
                ModelTier::Heavy => {
                    let image = runtime.spec.heavy.generate(&prompt);
                    let _ = done.send(Outcome::Completed(make_response(
                        job,
                        image,
                        ModelTier::Heavy,
                        None,
                        now,
                    )));
                }
            }
        }
    }
}

fn stage_latency(
    runtime: &CascadeRuntime,
    tier: ModelTier,
    batch: usize,
    uses_cascade: bool,
) -> f64 {
    match tier {
        ModelTier::Light => {
            let base = runtime
                .spec
                .light
                .latency()
                .exec_latency(batch)
                .as_secs_f64();
            if uses_cascade {
                base + runtime.discriminator.latency().as_secs_f64() * batch as f64
            } else {
                base
            }
        }
        ModelTier::Heavy => runtime
            .spec
            .heavy
            .latency()
            .exec_latency(batch)
            .as_secs_f64(),
    }
}

fn make_response(
    job: Job,
    image: diffserve_imagegen::GeneratedImage,
    tier: ModelTier,
    confidence: Option<f64>,
    now: f64,
) -> CompletedResponse {
    CompletedResponse {
        id: QueryId(job.qid),
        arrival: SimTime::from_secs_f64(job.arrival),
        completion: SimTime::from_secs_f64(now),
        features: image.features,
        quality: image.quality,
        tier,
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffserve_imagegen::{cascade1, DiscriminatorConfig, FeatureSpec};
    use diffserve_simkit::time::SimDuration;
    use std::sync::OnceLock;

    fn test_runtime() -> &'static CascadeRuntime {
        static RT: OnceLock<CascadeRuntime> = OnceLock::new();
        RT.get_or_init(|| {
            CascadeRuntime::prepare(
                cascade1(FeatureSpec::default()),
                1200,
                77,
                DiscriminatorConfig {
                    train_prompts: 400,
                    epochs: 8,
                    ..Default::default()
                },
            )
        })
    }

    fn quick_config() -> ClusterConfig {
        ClusterConfig {
            system: SystemConfig {
                num_workers: 8,
                metrics_window: SimDuration::from_secs(10),
                ..Default::default()
            },
            // Debug builds execute the (real) discriminator inference ~50x
            // slower, which eats into scaled wall-clock budgets; slow the
            // clock down accordingly so timing fidelity is preserved.
            time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
        }
    }

    fn short_trace(qps: f64) -> Trace {
        Trace::constant(qps, SimDuration::from_secs(40)).unwrap()
    }

    #[test]
    fn cluster_serves_and_accounts_for_all_queries() {
        let cfg = quick_config();
        let report = run_cluster(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::DiffServe, 8.0),
            &short_trace(5.0),
        );
        assert!(report.total_queries > 100);
        assert_eq!(report.completed + report.dropped, report.total_queries);
        assert!(report.fid.is_finite());
        // At modest load the cluster should mostly meet the SLO.
        assert!(
            report.violation_ratio < 0.35,
            "viol {}",
            report.violation_ratio
        );
    }

    #[test]
    fn clipper_light_on_cluster_has_no_violations() {
        let cfg = quick_config();
        let report = run_cluster(
            test_runtime(),
            &cfg,
            &RunSettings::new(Policy::ClipperLight, 8.0),
            &short_trace(5.0),
        );
        assert!(
            report.violation_ratio < 0.05,
            "viol {}",
            report.violation_ratio
        );
        assert_eq!(report.heavy_fraction, 0.0);
    }

    #[test]
    fn cluster_matches_simulator_shape() {
        // The fig6 validation in miniature: simulator and testbed should
        // agree on coarse metrics for the same workload.
        let cfg = quick_config();
        let settings = RunSettings::new(Policy::DiffServe, 8.0);
        let trace = short_trace(5.0);
        let cluster = run_cluster(test_runtime(), &cfg, &settings, &trace);
        let sim = diffserve_core::run_trace(test_runtime(), &cfg.system, &settings, &trace);
        let fid_gap = (cluster.fid - sim.fid).abs() / sim.fid;
        assert!(
            fid_gap < 0.25,
            "fid gap {fid_gap}: {} vs {}",
            cluster.fid,
            sim.fid
        );
        let viol_gap = (cluster.violation_ratio - sim.violation_ratio).abs();
        assert!(viol_gap < 0.3, "violation gap {viol_gap}");
    }
}
