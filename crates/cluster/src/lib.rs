//! # diffserve-cluster
//!
//! Thread-and-channel testbed runtime for the DiffServe reproduction.
//!
//! The paper's evaluation runs on two implementations: a discrete-event
//! simulator (in `diffserve-core`) and a 16×A100 cluster testbed with gRPC
//! communication. This crate stands in for the latter: real threads, real
//! (crossbeam) channels, real wall-clock time — with model execution
//! replaced by sleeping the profiled latency scaled by
//! [`ClusterConfig::time_scale`]. Comparing its measurements against the
//! simulator reproduces the paper's validation experiment (§4.3: 0.56% FID
//! and 1.1% SLO-violation gap).
//!
//! # Examples
//!
//! ```no_run
//! use diffserve_cluster::{run_cluster, ClusterConfig};
//! use diffserve_core::{CascadeRuntime, Policy, RunSettings};
//! use diffserve_imagegen::{cascade1, DiscriminatorConfig, FeatureSpec};
//! use diffserve_trace::Trace;
//! use diffserve_simkit::time::SimDuration;
//!
//! let runtime = CascadeRuntime::prepare(
//!     cascade1(FeatureSpec::default()), 2000, 42, DiscriminatorConfig::default());
//! let trace = Trace::constant(8.0, SimDuration::from_secs(60))?;
//! let report = run_cluster(
//!     &runtime,
//!     &ClusterConfig::default(),
//!     &RunSettings::new(Policy::DiffServe, 8.0),
//!     &trace,
//! );
//! println!("{}", report.summary());
//! # Ok::<(), diffserve_trace::TraceError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod plan;
pub mod runtime;

pub use plan::ServingPlan;
pub use runtime::{
    run_cluster, run_cluster_scenario, ClusterBackend, ClusterConfig, ClusterSessionExt,
};
