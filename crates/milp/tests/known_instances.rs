//! Hand-checkable solver instances: simplex optimality on small LPs whose
//! optima are known analytically, and branch & bound integrality/optimality
//! on small IPs. These pin down the substrate that `tests/solver_parity.rs`
//! and the allocation MILP build on.

use diffserve_milp::{
    solve_lp, solve_milp, Direction, MilpOptions, Problem, Sense, VarKind, INT_TOL,
};

/// max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  (the classic
/// Wyndor Glass problem; optimum 36 at (2, 6)).
#[test]
fn simplex_solves_wyndor_glass() {
    let mut p = Problem::new(Direction::Maximize);
    let x = p.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
    let y = p.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
    p.add_constraint("plant1", &[(x, 1.0)], Sense::Le, 4.0);
    p.add_constraint("plant2", &[(y, 2.0)], Sense::Le, 12.0);
    p.add_constraint("plant3", &[(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
    p.set_objective(&[(x, 3.0), (y, 5.0)]);
    let sol = solve_lp(&p).expect("feasible and bounded");
    assert!(
        (sol.objective - 36.0).abs() < 1e-9,
        "objective {}",
        sol.objective
    );
    assert!((sol.values[0] - 2.0).abs() < 1e-9);
    assert!((sol.values[1] - 6.0).abs() < 1e-9);
}

/// min 2x + 3y  s.t.  x + y ≥ 10, x ≥ 2, y ≥ 3  (optimum 23 at (7, 3):
/// push everything onto the cheaper variable).
#[test]
fn simplex_solves_minimization_with_lower_bounds() {
    let mut p = Problem::new(Direction::Minimize);
    let x = p.add_var("x", VarKind::Continuous, 2.0, f64::INFINITY);
    let y = p.add_var("y", VarKind::Continuous, 3.0, f64::INFINITY);
    p.add_constraint("cover", &[(x, 1.0), (y, 1.0)], Sense::Ge, 10.0);
    p.set_objective(&[(x, 2.0), (y, 3.0)]);
    let sol = solve_lp(&p).expect("feasible and bounded");
    assert!(
        (sol.objective - 23.0).abs() < 1e-9,
        "objective {}",
        sol.objective
    );
    assert!((sol.values[0] - 7.0).abs() < 1e-9);
    assert!((sol.values[1] - 3.0).abs() < 1e-9);
}

/// A degenerate-vertex LP (multiple optimal bases): simplex must still
/// report the unique optimal value.
#[test]
fn simplex_handles_alternative_optima() {
    // max x + y s.t. x + y ≤ 5, x ≤ 5, y ≤ 5: every point on the facet
    // x + y = 5 is optimal with value 5.
    let mut p = Problem::new(Direction::Maximize);
    let x = p.add_var("x", VarKind::Continuous, 0.0, 5.0);
    let y = p.add_var("y", VarKind::Continuous, 0.0, 5.0);
    p.add_constraint("facet", &[(x, 1.0), (y, 1.0)], Sense::Le, 5.0);
    p.set_objective(&[(x, 1.0), (y, 1.0)]);
    let sol = solve_lp(&p).expect("feasible and bounded");
    assert!((sol.objective - 5.0).abs() < 1e-9);
    assert!((sol.values[0] + sol.values[1] - 5.0).abs() < 1e-9);
}

/// Knapsack where LP rounding is wrong: max 8a + 11b + 6c + 4d with
/// weights 5,7,4,3 and capacity 14. LP relaxation takes a fractional item;
/// the integer optimum is {b, c, d} = 21, not the rounded-LP {a, b} = 19.
#[test]
fn branch_and_bound_beats_lp_rounding_on_knapsack() {
    let mut p = Problem::new(Direction::Maximize);
    let a = p.add_binary("a");
    let b = p.add_binary("b");
    let c = p.add_binary("c");
    let d = p.add_binary("d");
    p.add_constraint(
        "capacity",
        &[(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)],
        Sense::Le,
        14.0,
    );
    p.set_objective(&[(a, 8.0), (b, 11.0), (c, 6.0), (d, 4.0)]);

    let lp = solve_lp(&p).expect("relaxation solves");
    let milp = solve_milp(&p, &MilpOptions::default()).expect("ip solves");

    assert!(
        (milp.objective - 21.0).abs() < 1e-9,
        "objective {}",
        milp.objective
    );
    assert_eq!(milp.values, vec![0.0, 1.0, 1.0, 1.0]);
    // The relaxation is a strict upper bound here, so plain rounding of the
    // LP vertex cannot be what branch & bound returned.
    assert!(lp.objective > milp.objective + 0.5);
}

/// Every integer-kind variable in a MILP solution must be integral to
/// within `INT_TOL`, including when mixed with continuous variables.
#[test]
fn branch_and_bound_solutions_are_integral() {
    let mut p = Problem::new(Direction::Minimize);
    let servers = p.add_var("servers", VarKind::Integer, 0.0, 50.0);
    let spill = p.add_var("spill", VarKind::Continuous, 0.0, f64::INFINITY);
    // Each server covers 7.3 QPS of the 95-QPS demand; spill is a penalized
    // continuous slack, so the optimum sits at a fractional LP vertex.
    p.add_constraint("demand", &[(servers, 7.3), (spill, 1.0)], Sense::Ge, 95.0);
    p.set_objective(&[(servers, 10.0), (spill, 3.0)]);
    let sol = solve_milp(&p, &MilpOptions::default()).expect("feasible");
    let s = sol.values[0];
    assert!(
        (s - s.round()).abs() <= INT_TOL,
        "non-integral server count {s}"
    );
    // Cost comparison around the demand point: 13 servers cover 94.9 QPS,
    // leaving 0.1 spill (cost 130.3); 12 servers need 7.4 spill (142.2) and
    // 14 servers cost 140 outright.
    assert!((s - 13.0).abs() <= INT_TOL, "servers {s}");
    assert!(
        (sol.objective - 130.3).abs() < 1e-6,
        "objective {}",
        sol.objective
    );
}

/// An IP whose relaxation is feasible but whose integer lattice is not:
/// 2x = 1 with x integer in [0, 1].
#[test]
fn branch_and_bound_detects_integer_infeasibility() {
    let mut p = Problem::new(Direction::Minimize);
    let x = p.add_var("x", VarKind::Integer, 0.0, 1.0);
    p.add_constraint("odd", &[(x, 2.0)], Sense::Eq, 1.0);
    p.set_objective(&[(x, 1.0)]);
    assert!(solve_lp(&p).is_ok(), "relaxation admits x = 0.5");
    assert!(solve_milp(&p, &MilpOptions::default()).is_err());
}
