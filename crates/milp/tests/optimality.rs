//! Optimality property tests: the branch & bound optimum must dominate any
//! feasible point, and the LP relaxation must bound the MILP optimum.

use diffserve_milp::{solve_lp, solve_milp, Direction, MilpOptions, Problem, Sense, VarKind};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Random feasible integer point by rejection sampling, with the
/// coefficients tracked explicitly.
#[derive(Debug)]
struct TrackedIp {
    problem: Problem,
    objective: Vec<f64>,
    constraints: Vec<(Vec<f64>, f64)>, // (coeffs, rhs) all ≤
    n: usize,
}

fn random_tracked_ip(seed: u64) -> TrackedIp {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..6usize);
    let m = rng.gen_range(1..4usize);
    let mut p = Problem::new(Direction::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| p.add_var(format!("x{i}"), VarKind::Integer, 0.0, 6.0))
        .collect();
    let mut constraints = Vec::new();
    for c in 0..m {
        let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range(0..=4) as f64).collect();
        let rhs = rng.gen_range(4..25) as f64;
        let terms: Vec<_> = vars.iter().zip(&coeffs).map(|(&v, &a)| (v, a)).collect();
        p.add_constraint(format!("c{c}"), &terms, Sense::Le, rhs);
        constraints.push((coeffs, rhs));
    }
    let objective: Vec<f64> = (0..n).map(|_| rng.gen_range(-3..=6) as f64).collect();
    let obj: Vec<_> = vars.iter().zip(&objective).map(|(&v, &c)| (v, c)).collect();
    p.set_objective(&obj);
    TrackedIp {
        problem: p,
        objective,
        constraints,
        n,
    }
}

impl TrackedIp {
    fn feasible(&self, x: &[f64]) -> bool {
        self.constraints.iter().all(|(coeffs, rhs)| {
            coeffs.iter().zip(x).map(|(a, v)| a * v).sum::<f64>() <= rhs + 1e-9
        })
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn milp_dominates_random_feasible_points(seed in 0u64..5000, probe_seed in 0u64..5000) {
        let ip = random_tracked_ip(seed);
        let sol = solve_milp(&ip.problem, &MilpOptions::default()).expect("origin feasible");
        // Probe 50 random integer points; none may beat the claimed optimum.
        let mut rng = rand::rngs::StdRng::seed_from_u64(probe_seed);
        for _ in 0..50 {
            let x: Vec<f64> = (0..ip.n).map(|_| rng.gen_range(0..=6) as f64).collect();
            if ip.feasible(&x) {
                prop_assert!(
                    ip.value(&x) <= sol.objective + 1e-6,
                    "feasible point {:?} with value {} beats claimed optimum {}",
                    x, ip.value(&x), sol.objective
                );
            }
        }
        // And the optimum itself must be feasible and match its value.
        prop_assert!(ip.feasible(&sol.values));
        prop_assert!((ip.value(&sol.values) - sol.objective).abs() < 1e-6);
    }

    #[test]
    fn lp_relaxation_bounds_milp(seed in 0u64..5000) {
        let ip = random_tracked_ip(seed);
        let relaxed = solve_lp(&ip.problem).expect("bounded feasible LP");
        let integral = solve_milp(&ip.problem, &MilpOptions::default()).expect("feasible IP");
        // Maximization: LP bound >= MILP optimum.
        prop_assert!(
            relaxed.objective >= integral.objective - 1e-6,
            "LP {} must bound MILP {}",
            relaxed.objective,
            integral.objective
        );
    }
}

#[test]
fn origin_is_always_feasible_in_generated_ips() {
    for seed in 0..20 {
        let ip = random_tracked_ip(seed);
        assert!(ip.feasible(&vec![0.0; ip.n]));
        assert_eq!(ip.value(&vec![0.0; ip.n]), 0.0);
    }
}
