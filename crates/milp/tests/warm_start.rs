//! Warm-start parity property tests.
//!
//! A controller threads one [`WarmStart`] handle through a sequence of
//! related solves whose coefficients drift tick to tick. Whatever the
//! drift does to the previous optimum — still optimal, merely feasible,
//! or infeasible — the warm-started answer must agree with a cold solve
//! of the same problem.

use diffserve_milp::{
    solve_milp, solve_milp_warm, Basis, ColStatus, Direction, MilpOptions, Problem, Sense, VarKind,
    WarmStart,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random pure IP with fixed structure and a tick-dependent rhs: the
/// shape a control loop re-solves under a moving demand estimate.
struct DriftingIp {
    n: usize,
    constraints: Vec<(Vec<f64>, f64)>, // (coeffs ≥ 0, base rhs), all ≤
    objective: Vec<f64>,
}

impl DriftingIp {
    fn random(seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..5usize);
        let m = rng.gen_range(1..4usize);
        let constraints = (0..m)
            .map(|_| {
                let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range(0..=4) as f64).collect();
                (coeffs, rng.gen_range(4..20) as f64)
            })
            .collect();
        let objective = (0..n).map(|_| rng.gen_range(-4..=6) as f64).collect();
        DriftingIp {
            n,
            constraints,
            objective,
        }
    }

    /// The problem at one tick: every rhs shifted by `drift` (never below
    /// 0, so the origin stays feasible and the IP never turns infeasible).
    fn at(&self, drift: f64) -> Problem {
        self.build(drift, false)
    }

    /// Like [`DriftingIp::at`], but with base-7 uniqueness penalties on the
    /// objective: every distinct integer point (coordinates ≤ 6) gets a
    /// distinct penalty, and the total penalty stays below the ≥ 1 gap
    /// between distinct integer-valued main objectives. THE optimum is
    /// therefore unique, which lets warm-vs-cold agreement be asserted
    /// bit-for-bit on the values — the same construction the allocator
    /// MILP uses to guarantee warm starting never changes the plan.
    fn at_unique(&self, drift: f64) -> Problem {
        self.build(drift, true)
    }

    fn build(&self, drift: f64, unique_penalty: bool) -> Problem {
        let mut p = Problem::new(Direction::Maximize);
        let vars: Vec<_> = (0..self.n)
            .map(|i| p.add_var(format!("x{i}"), VarKind::Integer, 0.0, 6.0))
            .collect();
        for (c, (coeffs, rhs)) in self.constraints.iter().enumerate() {
            let terms: Vec<_> = vars.iter().zip(coeffs).map(|(&v, &a)| (v, a)).collect();
            p.add_constraint(format!("c{c}"), &terms, Sense::Le, (rhs + drift).max(0.0));
        }
        let obj: Vec<_> = vars
            .iter()
            .zip(&self.objective)
            .enumerate()
            .map(|(i, (&v, &c))| {
                let penalty = if unique_penalty {
                    1e-4 * 7f64.powi(i as i32)
                } else {
                    0.0
                };
                (v, c - penalty)
            })
            .collect();
        p.set_objective(&obj);
        p
    }

    fn feasible(&self, drift: f64, x: &[f64]) -> bool {
        self.constraints.iter().all(|(coeffs, rhs)| {
            coeffs.iter().zip(x).map(|(a, v)| a * v).sum::<f64>() <= (rhs + drift).max(0.0) + 1e-9
        })
    }

    /// Total columns of the LP relaxation: structurals plus one slack per
    /// constraint (how the bounded simplex lays out its tableau).
    fn lp_cols(&self) -> usize {
        self.n + self.constraints.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Thread one handle through a tighten-then-relax drift path; every
    /// tick's warm answer must match the cold optimum and be feasible.
    #[test]
    fn warm_start_never_changes_the_optimum(seed in 0u64..5000) {
        let ip = DriftingIp::random(seed);
        let mut warm = WarmStart::new();
        // Relax, hold, tighten, tighten hard, relax again: covers hints
        // that stay optimal, stay merely feasible, and turn infeasible.
        for drift in [0.0, 2.0, 2.0, -1.0, -6.0, 3.0] {
            let p = ip.at(drift);
            let cold = solve_milp(&p, &MilpOptions::default()).expect("origin feasible");
            let warmed = solve_milp_warm(&p, &MilpOptions::default(), &mut warm)
                .expect("origin feasible");
            prop_assert!(
                (warmed.objective - cold.objective).abs() < 1e-6,
                "drift {drift}: warm {} vs cold {}\n{p}",
                warmed.objective,
                cold.objective
            );
            prop_assert!(ip.feasible(drift, &warmed.values));
            prop_assert!(warmed.proved_optimal);
        }
    }

    /// Re-solving an unchanged problem through a primed handle returns the
    /// identical solution and never searches more than the cold solve did:
    /// the seeded incumbent prunes every node the cold search pruned, plus
    /// (when the root bound is tight) the whole tree.
    #[test]
    fn primed_resolve_shrinks_the_search(seed in 0u64..5000) {
        let ip = DriftingIp::random(seed);
        let p = ip.at(0.0);
        let mut warm = WarmStart::new();
        let first = solve_milp_warm(&p, &MilpOptions::default(), &mut warm).expect("feasible");
        let second = solve_milp_warm(&p, &MilpOptions::default(), &mut warm).expect("feasible");
        prop_assert_eq!(&second.values, &first.values);
        prop_assert!((second.objective - first.objective).abs() < 1e-9);
        prop_assert!(
            second.nodes <= first.nodes,
            "seeding the optimum must not grow the search: {} vs {}",
            second.nodes,
            first.nodes
        );
    }

    /// Basis-reused warm solves are bit-identical to cold solves across a
    /// randomized demand ladder — with deliberately staled bases injected
    /// mid-ladder to force the stale/singular fallback. The uniqueness
    /// penalties make THE optimum unique, so `values` (rounded integers)
    /// and the recomputed objective must match exactly, not just within
    /// tolerance.
    #[test]
    fn basis_reuse_stays_bit_identical_across_demand_ladders(seed in 0u64..5000) {
        let ip = DriftingIp::random(seed);
        let mut warm = WarmStart::new();
        let mut tick0_basis: Option<Basis> = None;
        for (tick, &drift) in [0.0, 1.0, 1.5, -2.0, 4.0, 0.5, -5.0, 2.5].iter().enumerate() {
            match tick {
                // A basis saved many ticks ago: right shape, stale values.
                4 => warm.set_basis(tick0_basis.clone()),
                // Shape garbage: must be rejected outright.
                5 => warm.set_basis(Some(Basis::from_parts(
                    vec![ColStatus::AtLower; 2],
                    vec![0],
                ))),
                // Right shape, duplicate basic column: singular by
                // construction, must fall back to Phase I.
                6 => {
                    let cols = ip.lp_cols();
                    let rows = ip.constraints.len();
                    let mut statuses = vec![ColStatus::AtLower; cols];
                    statuses[0] = ColStatus::Basic;
                    warm.set_basis(Some(Basis::from_parts(statuses, vec![0; rows])));
                }
                _ => {}
            }
            let p = ip.at_unique(drift);
            let cold = solve_milp(&p, &MilpOptions::default()).expect("origin feasible");
            let warmed = solve_milp_warm(&p, &MilpOptions::default(), &mut warm)
                .expect("origin feasible");
            prop_assert_eq!(
                &warmed.values, &cold.values,
                "tick {} (drift {}): warm and cold diverged\n{}", tick, drift, p
            );
            prop_assert_eq!(
                warmed.objective, cold.objective,
                "tick {} (drift {}): objectives diverged", tick, drift
            );
            prop_assert!(warmed.proved_optimal);
            if tick == 0 {
                tick0_basis = warm.basis().cloned();
                prop_assert!(tick0_basis.is_some(), "a feasible solve must export its basis");
            }
        }
    }
}

/// A deliberately stale or singular basis must route the solve through the
/// two-phase fallback, never an error: every corruption below still
/// returns the unique optimum of `max x + 2y s.t. x + y ≤ 3`.
#[test]
fn corrupt_bases_fall_back_instead_of_erroring() {
    let mut p = Problem::new(Direction::Maximize);
    let x = p.add_var("x", VarKind::Integer, 0.0, 6.0);
    let y = p.add_var("y", VarKind::Integer, 0.0, 6.0);
    p.add_constraint("cap", &[(x, 1.0), (y, 1.0)], Sense::Le, 3.0);
    p.set_objective(&[(x, 1.0), (y, 2.0)]);
    let cold = solve_milp(&p, &MilpOptions::default()).expect("feasible");
    assert_eq!(cold.values, vec![0.0, 3.0]);

    // 3 columns (x, y, slack), 1 row.
    let corruptions: Vec<Basis> = vec![
        // Wrong column count.
        Basis::from_parts(vec![ColStatus::AtLower; 7], vec![0]),
        // Wrong row count.
        Basis::from_parts(vec![ColStatus::AtLower; 3], vec![0, 1]),
        // Basic set inconsistent with the statuses (no Basic status).
        Basis::from_parts(vec![ColStatus::AtLower; 3], vec![1]),
        // Out-of-range basic column.
        Basis::from_parts(
            vec![ColStatus::Basic, ColStatus::AtLower, ColStatus::AtLower],
            vec![9],
        ),
        // Upper-bound status on a column with no finite upper bound
        // (the slack of a ≤ row ranges over [0, ∞)).
        Basis::from_parts(
            vec![ColStatus::AtLower, ColStatus::Basic, ColStatus::AtUpper],
            vec![1],
        ),
    ];
    for (i, basis) in corruptions.into_iter().enumerate() {
        let mut warm = WarmStart::new();
        warm.set_basis(Some(basis));
        let warmed = solve_milp_warm(&p, &MilpOptions::default(), &mut warm)
            .unwrap_or_else(|e| panic!("corruption {i} must fall back, got {e:?}"));
        assert_eq!(warmed.values, cold.values, "corruption {i}");
    }
}
