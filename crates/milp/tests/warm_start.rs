//! Warm-start parity property tests.
//!
//! A controller threads one [`WarmStart`] handle through a sequence of
//! related solves whose coefficients drift tick to tick. Whatever the
//! drift does to the previous optimum — still optimal, merely feasible,
//! or infeasible — the warm-started answer must agree with a cold solve
//! of the same problem.

use diffserve_milp::{
    solve_milp, solve_milp_warm, Direction, MilpOptions, Problem, Sense, VarKind, WarmStart,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random pure IP with fixed structure and a tick-dependent rhs: the
/// shape a control loop re-solves under a moving demand estimate.
struct DriftingIp {
    n: usize,
    constraints: Vec<(Vec<f64>, f64)>, // (coeffs ≥ 0, base rhs), all ≤
    objective: Vec<f64>,
}

impl DriftingIp {
    fn random(seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..5usize);
        let m = rng.gen_range(1..4usize);
        let constraints = (0..m)
            .map(|_| {
                let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range(0..=4) as f64).collect();
                (coeffs, rng.gen_range(4..20) as f64)
            })
            .collect();
        let objective = (0..n).map(|_| rng.gen_range(-4..=6) as f64).collect();
        DriftingIp {
            n,
            constraints,
            objective,
        }
    }

    /// The problem at one tick: every rhs shifted by `drift` (never below
    /// 0, so the origin stays feasible and the IP never turns infeasible).
    fn at(&self, drift: f64) -> Problem {
        let mut p = Problem::new(Direction::Maximize);
        let vars: Vec<_> = (0..self.n)
            .map(|i| p.add_var(format!("x{i}"), VarKind::Integer, 0.0, 6.0))
            .collect();
        for (c, (coeffs, rhs)) in self.constraints.iter().enumerate() {
            let terms: Vec<_> = vars.iter().zip(coeffs).map(|(&v, &a)| (v, a)).collect();
            p.add_constraint(format!("c{c}"), &terms, Sense::Le, (rhs + drift).max(0.0));
        }
        let obj: Vec<_> = vars
            .iter()
            .zip(&self.objective)
            .map(|(&v, &c)| (v, c))
            .collect();
        p.set_objective(&obj);
        p
    }

    fn feasible(&self, drift: f64, x: &[f64]) -> bool {
        self.constraints.iter().all(|(coeffs, rhs)| {
            coeffs.iter().zip(x).map(|(a, v)| a * v).sum::<f64>() <= (rhs + drift).max(0.0) + 1e-9
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Thread one handle through a tighten-then-relax drift path; every
    /// tick's warm answer must match the cold optimum and be feasible.
    #[test]
    fn warm_start_never_changes_the_optimum(seed in 0u64..5000) {
        let ip = DriftingIp::random(seed);
        let mut warm = WarmStart::new();
        // Relax, hold, tighten, tighten hard, relax again: covers hints
        // that stay optimal, stay merely feasible, and turn infeasible.
        for drift in [0.0, 2.0, 2.0, -1.0, -6.0, 3.0] {
            let p = ip.at(drift);
            let cold = solve_milp(&p, &MilpOptions::default()).expect("origin feasible");
            let warmed = solve_milp_warm(&p, &MilpOptions::default(), &mut warm)
                .expect("origin feasible");
            prop_assert!(
                (warmed.objective - cold.objective).abs() < 1e-6,
                "drift {drift}: warm {} vs cold {}\n{p}",
                warmed.objective,
                cold.objective
            );
            prop_assert!(ip.feasible(drift, &warmed.values));
            prop_assert!(warmed.proved_optimal);
        }
    }

    /// Re-solving an unchanged problem through a primed handle returns the
    /// identical solution and never searches more than the cold solve did:
    /// the seeded incumbent prunes every node the cold search pruned, plus
    /// (when the root bound is tight) the whole tree.
    #[test]
    fn primed_resolve_shrinks_the_search(seed in 0u64..5000) {
        let ip = DriftingIp::random(seed);
        let p = ip.at(0.0);
        let mut warm = WarmStart::new();
        let first = solve_milp_warm(&p, &MilpOptions::default(), &mut warm).expect("feasible");
        let second = solve_milp_warm(&p, &MilpOptions::default(), &mut warm).expect("feasible");
        prop_assert_eq!(&second.values, &first.values);
        prop_assert!((second.objective - first.objective).abs() < 1e-9);
        prop_assert!(
            second.nodes <= first.nodes,
            "seeding the optimum must not grow the search: {} vs {}",
            second.nodes,
            first.nodes
        );
    }
}
