//! Optimization problem builder.
//!
//! [`Problem`] is a lightweight modelling layer over the LP/MILP solvers:
//! named variables with bounds and integrality, linear constraints, and a
//! linear objective. The DiffServe resource manager (paper §3.3) builds its
//! allocation MILP through this API.

use std::fmt;

/// Identifier of a variable within a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the problem's variable list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Variable integrality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable (branch & bound enforces integrality).
    Integer,
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "=",
        })
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub(crate) name: String,
    pub(crate) kind: VarKind,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) name: String,
    pub(crate) terms: Vec<(VarId, f64)>,
    pub(crate) sense: Sense,
    pub(crate) rhs: f64,
}

/// A linear (mixed-integer) optimization problem.
///
/// # Examples
///
/// Build and solve `max 3x + 2y` subject to `x + y ≤ 4`, `x + 3y ≤ 6`:
///
/// ```
/// use diffserve_milp::{Direction, Problem, Sense, VarKind};
///
/// let mut p = Problem::new(Direction::Maximize);
/// let x = p.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
/// let y = p.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
/// p.add_constraint("c1", &[(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
/// p.add_constraint("c2", &[(x, 1.0), (y, 3.0)], Sense::Le, 6.0);
/// p.set_objective(&[(x, 3.0), (y, 2.0)]);
///
/// let sol = diffserve_milp::solve_lp(&p)?;
/// assert!((sol.objective - 12.0).abs() < 1e-9);
/// # Ok::<(), diffserve_milp::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) direction: Direction,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: Vec<f64>,
}

impl Problem {
    /// Creates an empty problem with the given optimization direction.
    pub fn new(direction: Direction) -> Self {
        Problem {
            direction,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
        }
    }

    /// Adds a variable and returns its id.
    ///
    /// `lower` may be `-inf` and `upper` may be `+inf`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
    ) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "bounds must not be NaN");
        assert!(
            lower <= upper,
            "lower bound {lower} exceeds upper bound {upper}"
        );
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.into(),
            kind,
            lower,
            upper,
        });
        self.objective.push(0.0);
        id
    }

    /// Convenience: adds a binary (0/1 integer) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, VarKind::Integer, 0.0, 1.0)
    }

    /// Adds a linear constraint `Σ coef·var  sense  rhs`.
    ///
    /// Repeated variables in `terms` are accumulated.
    ///
    /// # Panics
    ///
    /// Panics if any [`VarId`] does not belong to this problem or any
    /// coefficient is non-finite.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: &[(VarId, f64)],
        sense: Sense,
        rhs: f64,
    ) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut acc: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v.0 < self.vars.len(), "variable id out of range");
            assert!(c.is_finite(), "constraint coefficient must be finite");
            if let Some(slot) = acc.iter_mut().find(|(id, _)| *id == v) {
                slot.1 += c;
            } else {
                acc.push((v, c));
            }
        }
        self.constraints.push(Constraint {
            name: name.into(),
            terms: acc,
            sense,
            rhs,
        });
    }

    /// Sets the objective coefficients (unmentioned variables get 0).
    ///
    /// # Panics
    ///
    /// Panics if any [`VarId`] is out of range or a coefficient is
    /// non-finite.
    pub fn set_objective(&mut self, terms: &[(VarId, f64)]) {
        for c in &mut self.objective {
            *c = 0.0;
        }
        for &(v, c) in terms {
            assert!(v.0 < self.vars.len(), "variable id out of range");
            assert!(c.is_finite(), "objective coefficient must be finite");
            self.objective[v.0] += c;
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn var_name(&self, id: VarId) -> &str {
        &self.vars[id.0].name
    }

    /// Ids of all integer variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// The optimization direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Lower bounds of all variables, in id order.
    pub fn lower_bounds(&self) -> Vec<f64> {
        self.vars.iter().map(|v| v.lower).collect()
    }

    /// Upper bounds of all variables, in id order.
    pub fn upper_bounds(&self) -> Vec<f64> {
        self.vars.iter().map(|v| v.upper).collect()
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {}",
            match self.direction {
                Direction::Maximize => "maximize",
                Direction::Minimize => "minimize",
            },
            self.vars
                .iter()
                .zip(&self.objective)
                .filter(|(_, &c)| c != 0.0)
                .map(|(v, c)| format!("{c}·{}", v.name))
                .collect::<Vec<_>>()
                .join(" + ")
        )?;
        for c in &self.constraints {
            writeln!(
                f,
                "  {}: {} {} {}",
                c.name,
                c.terms
                    .iter()
                    .map(|(v, coef)| format!("{coef}·{}", self.vars[v.0].name))
                    .collect::<Vec<_>>()
                    .join(" + "),
                c.sense,
                c.rhs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_vars_and_constraints() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 10.0);
        let b = p.add_binary("b");
        p.add_constraint("c", &[(x, 1.0), (b, 5.0)], Sense::Le, 7.0);
        p.set_objective(&[(x, 1.0)]);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.integer_vars(), vec![b]);
        assert_eq!(p.lower_bounds(), vec![0.0, 0.0]);
        assert_eq!(p.upper_bounds(), vec![10.0, 1.0]);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        p.add_constraint("c", &[(x, 1.0), (x, 2.0)], Sense::Le, 3.0);
        assert_eq!(p.constraints[0].terms, vec![(x, 3.0)]);
        p.set_objective(&[(x, 1.0), (x, 1.5)]);
        assert_eq!(p.objective[0], 2.5);
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn inverted_bounds_panic() {
        let mut p = Problem::new(Direction::Minimize);
        p.add_var("x", VarKind::Continuous, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_var_id_panics() {
        let mut p1 = Problem::new(Direction::Minimize);
        let mut p2 = Problem::new(Direction::Minimize);
        let x = p1.add_var("x", VarKind::Continuous, 0.0, 1.0);
        p2.add_constraint("c", &[(x, 1.0)], Sense::Le, 1.0);
    }

    #[test]
    fn display_contains_pieces() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 1.0);
        p.add_constraint("cap", &[(x, 2.0)], Sense::Le, 1.0);
        p.set_objective(&[(x, 3.0)]);
        let s = format!("{p}");
        assert!(s.contains("maximize"));
        assert!(s.contains("cap"));
        assert!(s.contains("<="));
    }
}
