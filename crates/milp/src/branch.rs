//! Branch & bound over the simplex LP relaxation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::problem::{Direction, Problem, Sense};
use crate::simplex::{solve_lp_with_bounds, Basis, LpSolution, SolveError};

/// Tolerance within which an LP value counts as integral.
pub const INT_TOL: f64 = 1e-6;

/// Options controlling the branch & bound search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MilpOptions {
    /// Maximum number of B&B nodes to expand before giving up.
    pub node_limit: usize,
    /// Absolute optimality gap at which a node is pruned against the
    /// incumbent.
    pub gap: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            node_limit: 100_000,
            gap: 1e-9,
        }
    }
}

/// Result of a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Objective value at the best integral point found.
    pub objective: f64,
    /// Variable values (integer variables are exactly integral).
    pub values: Vec<f64>,
    /// Number of branch & bound nodes expanded.
    pub nodes: usize,
    /// `true` when the search completed (solution proved optimal); `false`
    /// when the node limit stopped the search with an incumbent in hand.
    pub proved_optimal: bool,
}

/// Carry-over state for warm-starting successive related solves.
///
/// Controllers re-solve the same MILP shape every tick with slowly moving
/// coefficients (the demand estimate drifts; the constraint structure is
/// fixed), so the previous tick's optimum is usually still feasible — and
/// very often still optimal. [`solve_milp_warm`] remembers the last
/// solution here and seeds the next branch & bound search with it: the
/// search starts with an incumbent in hand, pruning from the first node,
/// and when the root relaxation already proves the remembered point
/// optimal the solve returns after a single LP (no branching at all).
///
/// The handle is defensive by construction: a remembered point is
/// re-validated against the *current* problem (dimensions, bounds,
/// integrality, every constraint) before it is used, and a remembered
/// basis is structurally validated (and refactorized) by the simplex
/// layer, so a stale or mismatched hint degrades to a cold solve rather
/// than a wrong answer.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    previous: Option<Vec<f64>>,
    /// The incumbent's optimal simplex basis from the previous solve;
    /// seeds the root LP so a steady-state re-solve is a handful of dual
    /// pivots instead of a full two-phase run.
    basis: Option<Basis>,
}

impl WarmStart {
    /// An empty handle; the first solve through it runs cold.
    pub fn new() -> Self {
        WarmStart::default()
    }

    /// Forgets the remembered solution; the next solve runs cold.
    pub fn clear(&mut self) {
        self.previous = None;
        self.basis = None;
    }

    /// Whether a previous solution is currently remembered.
    pub fn is_primed(&self) -> bool {
        self.previous.is_some()
    }

    /// Overrides the remembered solution values (testing hook; normal use
    /// lets [`solve_milp_warm`] manage the handle).
    pub fn set_previous(&mut self, values: Option<Vec<f64>>) {
        self.previous = values;
    }

    /// The remembered simplex basis, if any.
    pub fn basis(&self) -> Option<&Basis> {
        self.basis.as_ref()
    }

    /// Overrides the remembered basis (testing hook for staled bases).
    pub fn set_basis(&mut self, basis: Option<Basis>) {
        self.basis = basis;
    }
}

/// Whether `values` is an integral feasible point of `problem`, usable as
/// a seeded branch & bound incumbent. Deliberately strict: rejecting a
/// genuinely feasible hint only costs a cold solve, while accepting an
/// infeasible one would corrupt the search.
fn usable_incumbent(problem: &Problem, values: &[f64]) -> bool {
    if values.len() != problem.num_vars() {
        return false;
    }
    let lower = problem.lower_bounds();
    let upper = problem.upper_bounds();
    for (i, &x) in values.iter().enumerate() {
        if !x.is_finite() || x < lower[i] - INT_TOL || x > upper[i] + INT_TOL {
            return false;
        }
    }
    for v in problem.integer_vars() {
        let x = values[v.index()];
        if (x - x.round()).abs() > INT_TOL {
            return false;
        }
    }
    problem.constraints.iter().all(|c| {
        let lhs: f64 = c.terms.iter().map(|(v, a)| a * values[v.index()]).sum();
        match c.sense {
            Sense::Le => lhs <= c.rhs + 1e-9,
            Sense::Ge => lhs >= c.rhs - 1e-9,
            Sense::Eq => (lhs - c.rhs).abs() <= 1e-9,
        }
    })
}

#[derive(Debug)]
struct Node {
    /// LP relaxation bound, normalized so larger is better.
    score: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
    relaxation: LpSolution,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
    }
}

/// Solves a mixed-integer linear program by best-first branch & bound.
///
/// Integer variables must have finite bounds (true for every model in this
/// workspace: worker counts are bounded by cluster size, selectors are
/// binary).
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] when no integral point exists,
/// [`SolveError::Unbounded`] if the relaxation is unbounded, and
/// [`SolveError::IterationLimit`] if the node limit is hit before any
/// incumbent is found.
///
/// # Examples
///
/// A tiny knapsack: two items of values 5 and 4 with weights 3 and 2 and
/// capacity 4 — only one item fits, take the value-5 one.
///
/// ```
/// use diffserve_milp::{solve_milp, Direction, MilpOptions, Problem, Sense};
///
/// let mut p = Problem::new(Direction::Maximize);
/// let a = p.add_binary("a");
/// let b = p.add_binary("b");
/// p.add_constraint("cap", &[(a, 3.0), (b, 2.0)], Sense::Le, 4.0);
/// p.set_objective(&[(a, 5.0), (b, 4.0)]);
/// let sol = solve_milp(&p, &MilpOptions::default())?;
/// assert_eq!(sol.objective, 5.0);
/// # Ok::<(), diffserve_milp::SolveError>(())
/// ```
pub fn solve_milp(problem: &Problem, options: &MilpOptions) -> Result<MilpSolution, SolveError> {
    solve_seeded(problem, options, None, None).map(|(sol, _)| sol)
}

/// [`solve_milp`] with tick-to-tick state carried in a [`WarmStart`].
///
/// The previous solution remembered in `warm` (if any, and if still
/// feasible for `problem`) seeds the branch & bound incumbent; on success
/// the new solution is remembered for the next call. A fresh or
/// invalidated handle behaves exactly like [`solve_milp`].
///
/// In the steady-state case for a controller re-solving under a slowly
/// drifting demand estimate, the remembered point is still optimal: the
/// search then starts with the answer as its incumbent and only has to
/// close the bound — and when the root relaxation is already tight it
/// finishes after that single LP (`nodes == 1`).
///
/// # Errors
///
/// Exactly as [`solve_milp`]; a failed solve leaves the remembered
/// solution untouched (it is re-validated on every call anyway).
pub fn solve_milp_warm(
    problem: &Problem,
    options: &MilpOptions,
    warm: &mut WarmStart,
) -> Result<MilpSolution, SolveError> {
    let result = solve_seeded(
        problem,
        options,
        warm.previous.as_deref(),
        warm.basis.as_ref(),
    );
    match result {
        Ok((sol, basis)) => {
            warm.previous = Some(sol.values.clone());
            if basis.is_some() {
                warm.basis = basis;
            }
            Ok(sol)
        }
        Err(e) => Err(e),
    }
}

/// Core search. Returns the solution plus the simplex basis of the LP
/// that produced the incumbent (when one is available), so the caller can
/// carry it tick to tick.
fn solve_seeded(
    problem: &Problem,
    options: &MilpOptions,
    hint: Option<&[f64]>,
    hint_basis: Option<&Basis>,
) -> Result<(MilpSolution, Option<Basis>), SolveError> {
    let int_vars = problem.integer_vars();
    let maximize = problem.direction() == Direction::Maximize;
    let norm = |obj: f64| if maximize { obj } else { -obj };

    let root_lower = problem.lower_bounds();
    let root_upper = problem.upper_bounds();
    for &v in &int_vars {
        assert!(
            root_lower[v.index()].is_finite() && root_upper[v.index()].is_finite(),
            "integer variable {} must have finite bounds",
            problem.var_name(v)
        );
    }

    // Seed the incumbent from the warm-start hint when it is still an
    // integral feasible point of *this* problem.
    let mut incumbent: Option<MilpSolution> = hint
        .filter(|values| usable_incumbent(problem, values))
        .map(|values| {
            let mut values = values.to_vec();
            for &v in &int_vars {
                values[v.index()] = values[v.index()].round();
            }
            let objective = problem
                .objective
                .iter()
                .zip(&values)
                .map(|(c, x)| c * x)
                .sum();
            MilpSolution {
                objective,
                values,
                nodes: 0,
                proved_optimal: false,
            }
        });

    let mut incumbent_basis: Option<Basis> = if incumbent.is_some() {
        hint_basis.cloned()
    } else {
        None
    };

    let root_relax = solve_lp_with_bounds(problem, &root_lower, &root_upper, hint_basis)?;
    if let Some(best) = &incumbent {
        // Fast path: the root bound already proves the seeded incumbent
        // optimal (within the gap) — no branching needed. The root basis
        // is this tick's optimal basis: carry it instead of the hint.
        if norm(root_relax.objective) <= norm(best.objective) + options.gap {
            let mut s = incumbent.take().expect("just matched Some");
            s.nodes = 1;
            s.proved_optimal = true;
            return Ok((s, Some(root_relax.basis)));
        }
    }
    let mut heap = BinaryHeap::new();
    heap.push(Node {
        score: norm(root_relax.objective),
        lower: root_lower,
        upper: root_upper,
        relaxation: root_relax,
    });

    let mut nodes = 0usize;

    while let Some(node) = heap.pop() {
        if nodes >= options.node_limit {
            return match incumbent {
                Some(mut s) => {
                    s.nodes = nodes;
                    s.proved_optimal = false;
                    Ok((s, incumbent_basis))
                }
                None => Err(SolveError::IterationLimit),
            };
        }
        nodes += 1;

        // Prune against the incumbent.
        if let Some(best) = &incumbent {
            if node.score <= norm(best.objective) + options.gap {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch_var = None;
        let mut best_frac = INT_TOL;
        for &v in &int_vars {
            let x = node.relaxation.values[v.index()];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some(v);
            }
        }

        match branch_var {
            None => {
                // Integral: snap and record as incumbent if better. The
                // objective is recomputed from the snapped values so it is
                // independent of the LP pivot path (warm and cold solves
                // then agree bit for bit, not just within round-off).
                let mut values = node.relaxation.values.clone();
                for &v in &int_vars {
                    values[v.index()] = values[v.index()].round();
                }
                let obj: f64 = problem
                    .objective
                    .iter()
                    .zip(&values)
                    .map(|(c, x)| c * x)
                    .sum();
                let better = incumbent
                    .as_ref()
                    .is_none_or(|b| norm(obj) > norm(b.objective) + options.gap);
                if better {
                    incumbent = Some(MilpSolution {
                        objective: obj,
                        values,
                        nodes,
                        proved_optimal: true,
                    });
                    incumbent_basis = Some(node.relaxation.basis.clone());
                }
            }
            Some(v) => {
                let x = node.relaxation.values[v.index()];
                let floor = x.floor();
                // Down branch: x <= floor.
                {
                    let mut upper = node.upper.clone();
                    upper[v.index()] = floor;
                    if node.lower[v.index()] <= floor {
                        push_child(
                            problem,
                            &node.lower,
                            &upper,
                            &node.relaxation.basis,
                            norm,
                            &incumbent,
                            options,
                            &mut heap,
                        );
                    }
                }
                // Up branch: x >= floor + 1.
                {
                    let mut lower = node.lower.clone();
                    lower[v.index()] = floor + 1.0;
                    if lower[v.index()] <= node.upper[v.index()] {
                        push_child(
                            problem,
                            &lower,
                            &node.upper,
                            &node.relaxation.basis,
                            norm,
                            &incumbent,
                            options,
                            &mut heap,
                        );
                    }
                }
            }
        }
    }

    match incumbent {
        Some(mut s) => {
            s.nodes = nodes;
            // The heap drained, so the search is complete — relevant when a
            // seeded incumbent (created unproven) was never displaced.
            s.proved_optimal = true;
            Ok((s, incumbent_basis))
        }
        None => Err(SolveError::Infeasible),
    }
}

#[allow(clippy::too_many_arguments)]
fn push_child(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
    parent_basis: &Basis,
    norm: impl Fn(f64) -> f64,
    incumbent: &Option<MilpSolution>,
    options: &MilpOptions,
    heap: &mut BinaryHeap<Node>,
) {
    match solve_lp_with_bounds(problem, lower, upper, Some(parent_basis)) {
        Ok(relaxation) => {
            let score = norm(relaxation.objective);
            if let Some(best) = incumbent {
                if score <= norm(best.objective) + options.gap {
                    return; // Bound: can't beat the incumbent.
                }
            }
            heap.push(Node {
                score,
                lower: lower.to_vec(),
                upper: upper.to_vec(),
                relaxation,
            });
        }
        Err(SolveError::Infeasible) => {}
        // Unbounded/iteration-limit children are dropped; the root solve
        // already screened for unboundedness.
        Err(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Sense, VarKind};

    #[test]
    fn knapsack_small() {
        // max 10a + 6b + 4c st 5a + 4b + 3c <= 9, binaries.
        // Best: a + b (weight 9, value 16).
        let mut p = Problem::new(Direction::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.add_constraint("w", &[(a, 5.0), (b, 4.0), (c, 3.0)], Sense::Le, 9.0);
        p.set_objective(&[(a, 10.0), (b, 6.0), (c, 4.0)]);
        let s = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert!((s.objective - 16.0).abs() < 1e-6);
        assert_eq!(s.values[0], 1.0);
        assert_eq!(s.values[1], 1.0);
        assert_eq!(s.values[2], 0.0);
        assert!(s.proved_optimal);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x st 2x <= 7 → LP gives 3.5, MILP must give 3.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Integer, 0.0, 100.0);
        p.add_constraint("c", &[(x, 2.0)], Sense::Le, 7.0);
        p.set_objective(&[(x, 1.0)]);
        let s = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(s.objective, 3.0);
    }

    #[test]
    fn minimization_with_integers() {
        // min 3x + 5y st x + y >= 4, integers → try (4,0)=12, (0,4)=20, (1,3)=18...
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", VarKind::Integer, 0.0, 10.0);
        let y = p.add_var("y", VarKind::Integer, 0.0, 10.0);
        p.add_constraint("c", &[(x, 1.0), (y, 1.0)], Sense::Ge, 4.0);
        p.set_objective(&[(x, 3.0), (y, 5.0)]);
        let s = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(s.objective, 12.0);
        assert_eq!(s.values[0], 4.0);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 2x + y, x integer ≤ 2.5 constraint-wise, y continuous ≤ 0.75.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Integer, 0.0, 10.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, 0.75);
        p.add_constraint("c", &[(x, 1.0)], Sense::Le, 2.5);
        p.set_objective(&[(x, 2.0), (y, 1.0)]);
        let s = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert!((s.objective - 4.75).abs() < 1e-6);
        assert_eq!(s.values[0], 2.0);
        assert!((s.values[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 <= x <= 0.6 with x integer: no integral point.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Integer, 0.0, 1.0);
        p.add_constraint("lo", &[(x, 1.0)], Sense::Ge, 0.4);
        p.add_constraint("hi", &[(x, 1.0)], Sense::Le, 0.6);
        p.set_objective(&[(x, 1.0)]);
        assert_eq!(
            solve_milp(&p, &MilpOptions::default()),
            Err(SolveError::Infeasible)
        );
    }

    #[test]
    fn selector_pattern_like_allocator() {
        // Exactly-one selector over three options with different payoffs and
        // capacity usage — the shape the DiffServe allocator relies on.
        let mut p = Problem::new(Direction::Maximize);
        let z: Vec<_> = (0..3).map(|i| p.add_binary(format!("z{i}"))).collect();
        p.add_constraint(
            "one",
            &[(z[0], 1.0), (z[1], 1.0), (z[2], 1.0)],
            Sense::Eq,
            1.0,
        );
        // Option payoffs 0.2, 0.5, 0.9; capacity costs 1, 3, 10; budget 5.
        p.add_constraint(
            "budget",
            &[(z[0], 1.0), (z[1], 3.0), (z[2], 10.0)],
            Sense::Le,
            5.0,
        );
        p.set_objective(&[(z[0], 0.2), (z[1], 0.5), (z[2], 0.9)]);
        let s = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert!((s.objective - 0.5).abs() < 1e-6);
        assert_eq!(s.values[1], 1.0);
    }

    #[test]
    fn node_limit_reports_incumbent_or_error() {
        let mut p = Problem::new(Direction::Maximize);
        let vars: Vec<_> = (0..12).map(|i| p.add_binary(format!("b{i}"))).collect();
        let weights: Vec<f64> = (0..12).map(|i| 3.0 + (i as f64 % 5.0)).collect();
        let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
        p.add_constraint("cap", &terms, Sense::Le, 20.0);
        let obj: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + (i as f64) * 0.618 % 3.0))
            .collect();
        p.set_objective(&obj);
        let opts = MilpOptions {
            node_limit: 3,
            ..Default::default()
        };
        match solve_milp(&p, &opts) {
            Ok(s) => assert!(!s.proved_optimal || s.nodes <= 3),
            Err(SolveError::IterationLimit) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    fn knapsack(capacity: f64) -> Problem {
        // max 10a + 6b + 4c st 5a + 4b + 3c <= capacity, binaries.
        let mut p = Problem::new(Direction::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.add_constraint("w", &[(a, 5.0), (b, 4.0), (c, 3.0)], Sense::Le, capacity);
        p.set_objective(&[(a, 10.0), (b, 6.0), (c, 4.0)]);
        p
    }

    #[test]
    fn warm_resolve_finishes_at_the_root() {
        let p = knapsack(9.0);
        let cold = solve_milp(&p, &MilpOptions::default()).unwrap();
        let mut warm = WarmStart::new();
        assert!(!warm.is_primed());
        let first = solve_milp_warm(&p, &MilpOptions::default(), &mut warm).unwrap();
        assert_eq!(first.values, cold.values);
        assert!(warm.is_primed());
        // Steady state: the remembered optimum short-circuits the search.
        let second = solve_milp_warm(&p, &MilpOptions::default(), &mut warm).unwrap();
        assert_eq!(second.values, cold.values);
        assert!((second.objective - cold.objective).abs() < 1e-9);
        assert_eq!(second.nodes, 1, "re-solve must stop after the root LP");
        assert!(second.proved_optimal);
    }

    #[test]
    fn stale_but_feasible_hint_does_not_hide_a_better_optimum() {
        let mut warm = WarmStart::new();
        // Capacity 9: only {a, b} fits (value 16).
        let tight = knapsack(9.0);
        solve_milp_warm(&tight, &MilpOptions::default(), &mut warm).unwrap();
        // Capacity 12: everything fits; the remembered point is feasible
        // but no longer optimal, and must not survive as the answer.
        let loose = knapsack(12.0);
        let s = solve_milp_warm(&loose, &MilpOptions::default(), &mut warm).unwrap();
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert_eq!(s.values, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn infeasible_hint_degrades_to_a_cold_solve() {
        let mut warm = WarmStart::new();
        let loose = knapsack(12.0);
        solve_milp_warm(&loose, &MilpOptions::default(), &mut warm).unwrap();
        // The remembered {a, b, c} overflows capacity 9: the hint must be
        // rejected and the solve still find the true optimum.
        let tight = knapsack(9.0);
        let s = solve_milp_warm(&tight, &MilpOptions::default(), &mut warm).unwrap();
        assert!((s.objective - 16.0).abs() < 1e-6);
        assert_eq!(s.values, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn dimension_mismatched_hint_is_ignored() {
        let mut warm = WarmStart::new();
        solve_milp_warm(&knapsack(9.0), &MilpOptions::default(), &mut warm).unwrap();
        // A two-variable problem cannot use the three-value hint.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", VarKind::Integer, 0.0, 10.0);
        let y = p.add_var("y", VarKind::Integer, 0.0, 10.0);
        p.add_constraint("c", &[(x, 1.0), (y, 1.0)], Sense::Ge, 4.0);
        p.set_objective(&[(x, 3.0), (y, 5.0)]);
        let s = solve_milp_warm(&p, &MilpOptions::default(), &mut warm).unwrap();
        assert_eq!(s.objective, 12.0);
        // The handle now remembers the new problem's solution...
        let again = solve_milp_warm(&p, &MilpOptions::default(), &mut warm).unwrap();
        assert_eq!(again.nodes, 1);
        // ...and clearing it forgets it.
        warm.clear();
        assert!(!warm.is_primed());
    }

    #[test]
    fn warm_matches_cold_on_random_ips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for trial in 0..30 {
            let n = rng.gen_range(2..5usize);
            let mut p = Problem::new(Direction::Maximize);
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_var(format!("x{i}"), VarKind::Integer, 0.0, 4.0))
                .collect();
            let terms: Vec<_> = vars
                .iter()
                .map(|&v| (v, rng.gen_range(0..=3) as f64))
                .collect();
            p.add_constraint("c", &terms, Sense::Le, rng.gen_range(1..10) as f64);
            let obj: Vec<_> = vars
                .iter()
                .map(|&v| (v, rng.gen_range(-5..=5) as f64))
                .collect();
            p.set_objective(&obj);

            let cold = solve_milp(&p, &MilpOptions::default()).expect("origin feasible");
            // Seeding a solve with its own cold optimum must reproduce it
            // bit for bit: the seeded incumbent prunes every alternate
            // optimum within the gap.
            let mut warm = WarmStart::new();
            warm.previous = Some(cold.values.clone());
            let seeded = solve_milp_warm(&p, &MilpOptions::default(), &mut warm).unwrap();
            assert_eq!(seeded.values, cold.values, "trial {trial}\n{p}");
            assert!(
                (seeded.objective - cold.objective).abs() < 1e-9,
                "trial {trial}: {} vs {}",
                seeded.objective,
                cold.objective
            );
        }
    }

    /// Exhaustive reference solver for small pure-integer programs.
    fn brute_force(p: &Problem) -> Option<f64> {
        let ints = p.integer_vars();
        assert_eq!(ints.len(), p.num_vars(), "brute force wants pure IP");
        let lowers = p.lower_bounds();
        let uppers = p.upper_bounds();
        let mut best: Option<f64> = None;
        let mut assign = lowers.clone();
        fn rec(
            p: &Problem,
            idx: usize,
            assign: &mut Vec<f64>,
            lowers: &[f64],
            uppers: &[f64],
            best: &mut Option<f64>,
        ) {
            if idx == assign.len() {
                for c in &p.constraints {
                    let lhs: f64 = c.terms.iter().map(|(v, a)| a * assign[v.index()]).sum();
                    let ok = match c.sense {
                        Sense::Le => lhs <= c.rhs + 1e-9,
                        Sense::Ge => lhs >= c.rhs - 1e-9,
                        Sense::Eq => (lhs - c.rhs).abs() < 1e-9,
                    };
                    if !ok {
                        return;
                    }
                }
                let obj: f64 = p
                    .objective
                    .iter()
                    .enumerate()
                    .map(|(i, c)| c * assign[i])
                    .sum();
                let better = match (p.direction(), *best) {
                    (_, None) => true,
                    (Direction::Maximize, Some(b)) => obj > b,
                    (Direction::Minimize, Some(b)) => obj < b,
                };
                if better {
                    *best = Some(obj);
                }
                return;
            }
            let mut v = lowers[idx];
            while v <= uppers[idx] + 1e-9 {
                assign[idx] = v;
                rec(p, idx + 1, assign, lowers, uppers, best);
                v += 1.0;
            }
        }
        rec(p, 0, &mut assign, &lowers, &uppers, &mut best);
        best
    }

    #[test]
    fn matches_brute_force_on_random_ips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2025);
        for trial in 0..40 {
            let n = rng.gen_range(2..5usize);
            let m = rng.gen_range(1..4usize);
            let dir = if rng.gen_bool(0.5) {
                Direction::Maximize
            } else {
                Direction::Minimize
            };
            let mut p = Problem::new(dir);
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_var(format!("x{i}"), VarKind::Integer, 0.0, 4.0))
                .collect();
            for c in 0..m {
                let terms: Vec<_> = vars
                    .iter()
                    .map(|&v| (v, rng.gen_range(-3..=3) as f64))
                    .collect();
                // Keep rhs positive with a Le sense so the origin stays
                // feasible and the IP is never infeasible.
                p.add_constraint(
                    format!("c{c}"),
                    &terms,
                    Sense::Le,
                    rng.gen_range(1..10) as f64,
                );
            }
            let obj: Vec<_> = vars
                .iter()
                .map(|&v| (v, rng.gen_range(-5..=5) as f64))
                .collect();
            p.set_objective(&obj);

            let reference = brute_force(&p).expect("origin is feasible");
            let milp = solve_milp(&p, &MilpOptions::default())
                .unwrap_or_else(|e| panic!("trial {trial}: solver failed: {e}\n{p}"));
            assert!(
                (milp.objective - reference).abs() < 1e-6,
                "trial {trial}: milp={} brute={}\n{p}",
                milp.objective,
                reference
            );
        }
    }
}
