//! Two-phase primal simplex over a dense tableau.
//!
//! The solver handles general bounds by substitution: finite lower bounds are
//! shifted to zero, free variables are split into positive/negative parts,
//! and finite upper bounds become explicit row constraints. Bland's rule is
//! used for both the entering and leaving variable, which guarantees
//! termination (no cycling) at the cost of a few extra pivots — irrelevant at
//! the problem sizes the DiffServe allocator produces (≲ 200 columns).

use crate::problem::{Direction, Problem, Sense};

/// Numerical tolerance used throughout the solver.
pub const TOL: f64 = 1e-9;

/// Why the solver could not return an optimum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// No point satisfies all constraints and bounds.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// Iteration limit hit (indicates a numerically hostile instance).
    IterationLimit,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SolveError::Infeasible => "problem is infeasible",
            SolveError::Unbounded => "problem is unbounded",
            SolveError::IterationLimit => "simplex iteration limit exceeded",
        })
    }
}

impl std::error::Error for SolveError {}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value in the problem's original direction.
    pub objective: f64,
    /// Optimal value of each variable, indexed by [`VarId::index`].
    ///
    /// [`VarId::index`]: crate::problem::VarId::index
    pub values: Vec<f64>,
}

/// Solves the LP relaxation of `problem` (integrality ignored).
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] or [`SolveError::Unbounded`] as
/// appropriate, and [`SolveError::IterationLimit`] on pathological inputs.
pub fn solve_lp(problem: &Problem) -> Result<LpSolution, SolveError> {
    solve_lp_with_bounds(problem, &problem.lower_bounds(), &problem.upper_bounds())
}

/// Solves the LP relaxation with overridden variable bounds.
///
/// Branch & bound uses this to solve node relaxations without rebuilding the
/// [`Problem`].
///
/// # Errors
///
/// See [`solve_lp`].
///
/// # Panics
///
/// Panics if the bound vectors do not match the number of variables or if
/// any pair is inverted.
pub fn solve_lp_with_bounds(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
) -> Result<LpSolution, SolveError> {
    let n = problem.num_vars();
    assert_eq!(lower.len(), n, "lower bounds length mismatch");
    assert_eq!(upper.len(), n, "upper bounds length mismatch");
    for j in 0..n {
        assert!(
            lower[j] <= upper[j] + TOL,
            "inverted bounds for variable {j}: [{}, {}]",
            lower[j],
            upper[j]
        );
        if lower[j] > upper[j] {
            // Equal-within-tolerance but numerically inverted: clamp.
            return solve_lp_with_bounds(
                problem,
                &lower
                    .iter()
                    .zip(upper)
                    .map(|(l, u)| l.min(*u))
                    .collect::<Vec<_>>(),
                upper,
            );
        }
    }

    // --- Substitution into standard form -------------------------------
    // Each original var x_j maps to one of:
    //   Shifted { col }:        x = lower + x',          x' >= 0
    //   Split { pos, neg }:     x = x+ - x-,             x+, x- >= 0
    #[derive(Clone, Copy)]
    enum VarMap {
        Shifted { col: usize },
        Split { pos: usize, neg: usize },
    }

    let mut mapping = Vec::with_capacity(n);
    let mut num_cols = 0usize;
    for &lo in lower.iter().take(n) {
        if lo.is_finite() {
            mapping.push(VarMap::Shifted { col: num_cols });
            num_cols += 1;
        } else {
            mapping.push(VarMap::Split {
                pos: num_cols,
                neg: num_cols + 1,
            });
            num_cols += 2;
        }
    }

    // Rows: original constraints (rhs adjusted by lower-bound shifts) plus
    // upper-bound rows x' <= u - l for finite upper bounds.
    struct Row {
        coeffs: Vec<(usize, f64)>, // (column, coefficient)
        sense: Sense,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();

    for c in &problem.constraints {
        let mut rhs = c.rhs;
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len() + 1);
        for &(v, a) in &c.terms {
            match mapping[v.0] {
                VarMap::Shifted { col } => {
                    rhs -= a * lower[v.0];
                    coeffs.push((col, a));
                }
                VarMap::Split { pos, neg } => {
                    coeffs.push((pos, a));
                    coeffs.push((neg, -a));
                }
            }
        }
        rows.push(Row {
            coeffs,
            sense: c.sense,
            rhs,
        });
    }
    for j in 0..n {
        if upper[j].is_finite() {
            match mapping[j] {
                VarMap::Shifted { col } => {
                    let ub = upper[j] - lower[j];
                    rows.push(Row {
                        coeffs: vec![(col, 1.0)],
                        sense: Sense::Le,
                        rhs: ub.max(0.0),
                    });
                }
                VarMap::Split { pos, neg } => {
                    rows.push(Row {
                        coeffs: vec![(pos, 1.0), (neg, -1.0)],
                        sense: Sense::Le,
                        rhs: upper[j],
                    });
                }
            }
        }
    }

    // Objective in minimization form over the substituted columns.
    let sign = match problem.direction {
        Direction::Minimize => 1.0,
        Direction::Maximize => -1.0,
    };
    let mut cost = vec![0.0; num_cols];
    let mut obj_shift = 0.0; // constant from lower-bound shifts
    for j in 0..n {
        let c = problem.objective[j] * sign;
        if c == 0.0 {
            continue;
        }
        match mapping[j] {
            VarMap::Shifted { col } => {
                cost[col] = c;
                obj_shift += c * lower[j];
            }
            VarMap::Split { pos, neg } => {
                cost[pos] = c;
                cost[neg] = -c;
            }
        }
    }

    // --- Build tableau with slacks/artificials --------------------------
    let m = rows.len();
    // Normalize rhs >= 0 by flipping rows.
    let mut senses = Vec::with_capacity(m);
    for row in &mut rows {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for c in &mut row.coeffs {
                c.1 = -c.1;
            }
            row.sense = match row.sense {
                Sense::Le => Sense::Ge,
                Sense::Ge => Sense::Le,
                Sense::Eq => Sense::Eq,
            };
        }
        senses.push(row.sense);
    }
    let num_slack = senses
        .iter()
        .filter(|s| matches!(s, Sense::Le | Sense::Ge))
        .count();
    let num_art = senses
        .iter()
        .filter(|s| matches!(s, Sense::Ge | Sense::Eq))
        .count();
    let total = num_cols + num_slack + num_art;

    // Dense tableau: m rows × (total + 1) columns, rhs last.
    let mut t = vec![vec![0.0; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut is_artificial = vec![false; total];
    {
        let mut slack_at = num_cols;
        let mut art_at = num_cols + num_slack;
        for (i, row) in rows.iter().enumerate() {
            for &(col, a) in &row.coeffs {
                t[i][col] += a;
            }
            t[i][total] = row.rhs;
            match row.sense {
                Sense::Le => {
                    t[i][slack_at] = 1.0;
                    basis[i] = slack_at;
                    slack_at += 1;
                }
                Sense::Ge => {
                    t[i][slack_at] = -1.0;
                    slack_at += 1;
                    t[i][art_at] = 1.0;
                    is_artificial[art_at] = true;
                    basis[i] = art_at;
                    art_at += 1;
                }
                Sense::Eq => {
                    t[i][art_at] = 1.0;
                    is_artificial[art_at] = true;
                    basis[i] = art_at;
                    art_at += 1;
                }
            }
        }
    }

    let max_iters = 50 * (m + total + 10);

    // --- Phase 1: minimize sum of artificials ---------------------------
    if num_art > 0 {
        let mut phase1_cost = vec![0.0; total];
        for (j, flag) in is_artificial.iter().enumerate() {
            if *flag {
                phase1_cost[j] = 1.0;
            }
        }
        run_simplex(
            &mut t,
            &mut basis,
            &phase1_cost,
            max_iters,
            Some(&is_artificial),
        )?;
        let obj1: f64 = basis
            .iter()
            .enumerate()
            .map(|(i, &b)| phase1_cost[b] * t[i][total])
            .sum();
        if obj1 > 1e-7 {
            return Err(SolveError::Infeasible);
        }
        // Pivot remaining artificials (at zero level) out of the basis.
        for i in 0..m {
            if is_artificial[basis[i]] {
                let mut pivoted = false;
                for j in 0..total {
                    if !is_artificial[j] && t[i][j].abs() > 1e-7 {
                        pivot(&mut t, &mut basis, i, j);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row: zero it so it can never constrain.
                    for v in t[i].iter_mut() {
                        *v = 0.0;
                    }
                }
            }
        }
    }

    // --- Phase 2: minimize original cost (artificials barred) -----------
    let mut phase2_cost = vec![0.0; total];
    phase2_cost[..num_cols].copy_from_slice(&cost);
    run_simplex(
        &mut t,
        &mut basis,
        &phase2_cost,
        max_iters,
        Some(&is_artificial),
    )?;

    // --- Extract solution ------------------------------------------------
    let mut col_values = vec![0.0; total];
    for i in 0..m {
        if basis[i] != usize::MAX {
            col_values[basis[i]] = t[i][total];
        }
    }
    let mut values = vec![0.0; n];
    for j in 0..n {
        values[j] = match mapping[j] {
            VarMap::Shifted { col } => lower[j] + col_values[col],
            VarMap::Split { pos, neg } => col_values[pos] - col_values[neg],
        };
        // Snap to bounds against round-off.
        if values[j] < lower[j] {
            values[j] = lower[j];
        }
        if values[j] > upper[j] {
            values[j] = upper[j];
        }
    }
    let raw_obj: f64 = (0..num_cols).map(|c| phase2_cost[c] * col_values[c]).sum();
    let objective = (raw_obj + obj_shift) * sign;
    Ok(LpSolution { objective, values })
}

/// Runs minimizing simplex iterations on the tableau until optimality.
///
/// `barred` columns (phase-1 artificials during phase 2) are never chosen as
/// entering variables.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    max_iters: usize,
    barred: Option<&[bool]>,
) -> Result<(), SolveError> {
    let m = t.len();
    let total = cost.len();
    let rhs_col = total;

    // Dantzig's rule (most negative reduced cost) converges in far fewer
    // pivots but can cycle on degenerate problems; Bland's rule (first
    // improving index) terminates always but stalls. Standard practice:
    // start with Dantzig and fall back to Bland once the iteration count
    // suggests degeneracy.
    let bland_after = 10 * (m + total + 10);

    for iter in 0..max_iters {
        let use_bland = iter >= bland_after;
        // Reduced costs: r_j = c_j - c_B' T[:,j].
        let mut entering = None;
        let mut most_negative = -TOL;
        for j in 0..total {
            if let Some(bar) = barred {
                // During phase 2 the artificial columns stay barred; during
                // phase 1 they carry cost 1 and may re-enter freely, so only
                // bar them when their cost is zero (phase 2).
                if bar[j] && cost[j] == 0.0 {
                    continue;
                }
            }
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost[j];
            for i in 0..m {
                let cb = if basis[i] == usize::MAX {
                    0.0
                } else {
                    cost[basis[i]]
                };
                if cb != 0.0 {
                    r -= cb * t[i][j];
                }
            }
            if r < most_negative {
                entering = Some(j);
                if use_bland {
                    break; // Bland: first improving index.
                }
                most_negative = r; // Dantzig: keep scanning for the best.
            }
        }
        let Some(e) = entering else {
            return Ok(());
        };

        // Ratio test (Bland ties: smallest basis index).
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][e] > TOL {
                let ratio = t[i][rhs_col] / t[i][e];
                let better = ratio < best_ratio - TOL
                    || (ratio < best_ratio + TOL && leave.is_none_or(|l| basis[i] < basis[l]));
                if better {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(l) = leave else {
            return Err(SolveError::Unbounded);
        };
        pivot(t, basis, l, e);
    }
    Err(SolveError::IterationLimit)
}

/// Pivots the tableau on `(row, col)`.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let width = t[row].len();
    let p = t[row][col];
    debug_assert!(p.abs() > 1e-12, "pivot on (near-)zero element");
    for v in t[row].iter_mut() {
        *v /= p;
    }
    // Snapshot the (normalized) pivot row so eliminating the other rows can
    // borrow them mutably.
    let pivot_row = t[row].clone();
    for (i, other) in t.iter_mut().enumerate() {
        if i == row {
            continue;
        }
        let factor = other[col];
        if factor == 0.0 {
            continue;
        }
        debug_assert_eq!(other.len(), width);
        for (cell, &p_j) in other.iter_mut().zip(pivot_row.iter()) {
            *cell -= factor * p_j;
        }
        other[col] = 0.0; // exact zero against round-off
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Direction, Problem, Sense, VarKind};

    fn cont(p: &mut Problem, name: &str) -> crate::problem::VarId {
        p.add_var(name, VarKind::Continuous, 0.0, f64::INFINITY)
    }

    #[test]
    fn textbook_max() {
        // max 3x + 2y st x+y<=4, x+3y<=6 → (4,0), obj 12.
        let mut p = Problem::new(Direction::Maximize);
        let x = cont(&mut p, "x");
        let y = cont(&mut p, "y");
        p.add_constraint("c1", &[(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
        p.add_constraint("c2", &[(x, 1.0), (y, 3.0)], Sense::Le, 6.0);
        p.set_objective(&[(x, 3.0), (y, 2.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 12.0).abs() < 1e-8);
        assert!((s.values[0] - 4.0).abs() < 1e-8);
        assert!(s.values[1].abs() < 1e-8);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y st x + y >= 10, x <= 6 → x=6, y=4, obj 24.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 6.0);
        let y = cont(&mut p, "y");
        p.add_constraint("demand", &[(x, 1.0), (y, 1.0)], Sense::Ge, 10.0);
        p.set_objective(&[(x, 2.0), (y, 3.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 24.0).abs() < 1e-8);
        assert!((s.values[0] - 6.0).abs() < 1e-8);
        assert!((s.values[1] - 4.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraint() {
        // max x + y st x + 2y = 4, x <= 2 → x=2, y=1, obj 3.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 2.0);
        let y = cont(&mut p, "y");
        p.add_constraint("eq", &[(x, 1.0), (y, 2.0)], Sense::Eq, 4.0);
        p.set_objective(&[(x, 1.0), (y, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-8);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 1.0);
        p.add_constraint("impossible", &[(x, 1.0)], Sense::Ge, 5.0);
        p.set_objective(&[(x, 1.0)]);
        assert_eq!(solve_lp(&p), Err(SolveError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Direction::Maximize);
        let x = cont(&mut p, "x");
        p.set_objective(&[(x, 1.0)]);
        assert_eq!(solve_lp(&p), Err(SolveError::Unbounded));
    }

    #[test]
    fn bounded_by_upper_bound_only() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 7.5);
        p.set_objective(&[(x, 2.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 15.0).abs() < 1e-8);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x + y with x >= 3, y >= 2, x + y >= 8 → obj 8.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", VarKind::Continuous, 3.0, f64::INFINITY);
        let y = p.add_var("y", VarKind::Continuous, 2.0, f64::INFINITY);
        p.add_constraint("c", &[(x, 1.0), (y, 1.0)], Sense::Ge, 8.0);
        p.set_objective(&[(x, 1.0), (y, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-8);
        assert!(s.values[0] >= 3.0 - 1e-9);
        assert!(s.values[1] >= 2.0 - 1e-9);
    }

    #[test]
    fn free_variable_split() {
        // min |ish|: minimize y st y >= x - 4, y >= 4 - x with x free → any x
        // near 4 gives y = 0.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", VarKind::Continuous, f64::NEG_INFINITY, f64::INFINITY);
        let y = cont(&mut p, "y");
        p.add_constraint("a", &[(y, 1.0), (x, -1.0)], Sense::Ge, -4.0);
        p.add_constraint("b", &[(y, 1.0), (x, 1.0)], Sense::Ge, 4.0);
        p.set_objective(&[(y, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!(s.objective.abs() < 1e-8);
        assert!((s.values[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // x - y <= -2 with x,y in [0,10]; max x → x = 8 when y = 10.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 10.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, 10.0);
        p.add_constraint("gap", &[(x, 1.0), (y, -1.0)], Sense::Le, -2.0);
        p.set_objective(&[(x, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints intersecting at the optimum.
        let mut p = Problem::new(Direction::Maximize);
        let x = cont(&mut p, "x");
        let y = cont(&mut p, "y");
        p.add_constraint("a", &[(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        p.add_constraint("b", &[(x, 2.0), (y, 2.0)], Sense::Le, 2.0);
        p.add_constraint("c", &[(x, 1.0)], Sense::Le, 1.0);
        p.add_constraint("d", &[(y, 1.0)], Sense::Le, 1.0);
        p.set_objective(&[(x, 1.0), (y, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-8);
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 2.5, 2.5);
        let y = p.add_var("y", VarKind::Continuous, 0.0, 10.0);
        p.add_constraint("c", &[(x, 1.0), (y, 1.0)], Sense::Le, 5.0);
        p.set_objective(&[(y, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.values[0] - 2.5).abs() < 1e-9);
        assert!((s.objective - 2.5).abs() < 1e-8);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            format!("{}", SolveError::Infeasible),
            "problem is infeasible"
        );
        assert_eq!(format!("{}", SolveError::Unbounded), "problem is unbounded");
    }
}
