//! Bounded-variable primal/dual simplex over a dense tableau.
//!
//! Variable bounds are handled natively: a nonbasic variable rests at its
//! lower bound, its upper bound, or (for free variables) at zero, and the
//! ratio tests account for both bounds — including bound-to-bound flips
//! that never touch the basis. Row senses are encoded as bounds on the
//! slack column (`<=` → slack in `[0, ∞)`, `>=` → slack in `(-∞, 0]`,
//! `=` → slack fixed at zero), so the tableau has exactly one row per
//! constraint and no artificial or bound rows. That keeps the DiffServe
//! allocator LP at ~18 rows instead of the ~90 the old
//! substitution-based formulation produced, and — more importantly — it
//! makes the column layout independent of the bound values, so a basis
//! from one solve can restart a related solve (branch & bound children,
//! tick-to-tick controller re-solves) via [`Basis`].
//!
//! Cold solves run a composite phase 1 (minimize the total bound
//! violation of the basics with a first-breakpoint ratio test) followed
//! by a primal phase 2. Warm solves refactorize the supplied basis and
//! reoptimize with a bounded dual simplex (bound changes leave the parent
//! basis dual feasible); whenever the basis is stale, singular, or the
//! reoptimization misbehaves numerically, the solver falls back to the
//! cold two-phase path, so correctness never depends on the fast path.
//! Entering variables use Dantzig's rule with a Bland fallback once the
//! iteration count suggests degenerate cycling.

use crate::problem::{Direction, Problem, Sense};

/// Numerical tolerance used throughout the solver.
pub const TOL: f64 = 1e-9;

/// Tolerance for primal feasibility decisions (bound violations).
const FEAS_TOL: f64 = 1e-7;

/// Tolerance for dual feasibility decisions on warm-started bases.
const DUAL_TOL: f64 = 1e-7;

/// Smallest pivot magnitude accepted when refactorizing a warm basis.
const PIVOT_TOL: f64 = 1e-7;

/// Why the solver could not return an optimum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// No point satisfies all constraints and bounds.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// Iteration limit hit (indicates a numerically hostile instance).
    IterationLimit,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SolveError::Infeasible => "problem is infeasible",
            SolveError::Unbounded => "problem is unbounded",
            SolveError::IterationLimit => "simplex iteration limit exceeded",
        })
    }
}

impl std::error::Error for SolveError {}

/// Where a column rests in a simplex basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColStatus {
    /// In the basis; its value lives in the corresponding tableau row.
    Basic,
    /// Nonbasic at its (finite) lower bound.
    AtLower,
    /// Nonbasic at its (finite) upper bound.
    AtUpper,
    /// Nonbasic free variable resting at zero.
    Free,
}

/// A simplex basis: one status per column (structurals first, then one
/// slack per row) plus the basic column of each row.
///
/// Returned by every solve in [`LpSolution::basis`] and accepted back by
/// [`solve_lp_with_bounds`] to warm-start a related solve. A basis is
/// validated against the problem it is applied to — wrong shape, bound
/// mismatch, or a singular column selection silently falls back to the
/// cold two-phase solve, so a stale basis can cost time but never
/// correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    statuses: Vec<ColStatus>,
    basic: Vec<usize>,
}

impl Basis {
    /// Assembles a basis from raw parts: `statuses[j]` for each of the
    /// `num_vars + num_constraints` columns and the basic column of each
    /// row. No validation happens here — an inconsistent basis is
    /// detected (and ignored) by the solve it is passed to.
    pub fn from_parts(statuses: Vec<ColStatus>, basic: Vec<usize>) -> Self {
        Basis { statuses, basic }
    }

    /// Number of columns this basis describes (structurals + slacks).
    pub fn num_cols(&self) -> usize {
        self.statuses.len()
    }

    /// Number of rows (= basic columns) this basis describes.
    pub fn num_rows(&self) -> usize {
        self.basic.len()
    }
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value in the problem's original direction.
    pub objective: f64,
    /// Optimal value of each variable, indexed by [`VarId::index`].
    ///
    /// [`VarId::index`]: crate::problem::VarId::index
    pub values: Vec<f64>,
    /// The optimal basis, reusable to warm-start a related solve.
    pub basis: Basis,
}

/// Solves the LP relaxation of `problem` (integrality ignored).
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] or [`SolveError::Unbounded`] as
/// appropriate, and [`SolveError::IterationLimit`] on pathological inputs.
pub fn solve_lp(problem: &Problem) -> Result<LpSolution, SolveError> {
    solve_lp_with_bounds(
        problem,
        &problem.lower_bounds(),
        &problem.upper_bounds(),
        None,
    )
}

/// Solves the LP relaxation with overridden variable bounds, optionally
/// warm-started from a previous solve's [`Basis`].
///
/// Branch & bound uses this to solve node relaxations without rebuilding
/// the [`Problem`], handing each child its parent's optimal basis: a
/// child differs only in one variable bound, which leaves the parent
/// basis dual feasible, so the solve reduces to a handful of dual simplex
/// pivots instead of a full two-phase run. A basis that does not fit the
/// problem (wrong shape, statuses pointing at infinite bounds, singular)
/// is ignored and the solve runs cold — the warm path can never change
/// the result, only the time to reach it.
///
/// # Errors
///
/// See [`solve_lp`].
///
/// # Panics
///
/// Panics if the bound vectors do not match the number of variables or if
/// any pair is inverted.
pub fn solve_lp_with_bounds(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
    warm: Option<&Basis>,
) -> Result<LpSolution, SolveError> {
    let n = problem.num_vars();
    assert_eq!(lower.len(), n, "lower bounds length mismatch");
    assert_eq!(upper.len(), n, "upper bounds length mismatch");
    for j in 0..n {
        assert!(
            lower[j] <= upper[j] + TOL,
            "inverted bounds for variable {j}: [{}, {}]",
            lower[j],
            upper[j]
        );
        if lower[j] > upper[j] {
            // Equal-within-tolerance but numerically inverted: clamp.
            return solve_lp_with_bounds(
                problem,
                &lower
                    .iter()
                    .zip(upper)
                    .map(|(l, u)| l.min(*u))
                    .collect::<Vec<_>>(),
                upper,
                warm,
            );
        }
    }

    let inst = Instance::build(problem, lower, upper);
    if let Some(basis) = warm {
        if let Some(t) = inst.try_warm(basis) {
            return Ok(inst.extract(&t));
        }
    }
    let t = inst.solve_cold()?;
    Ok(inst.extract(&t))
}

/// The LP in solver form: `A x + s = b` with per-column bounds, senses
/// folded into the slack bounds, costs in minimization form.
struct Instance {
    /// Rows (constraints).
    m: usize,
    /// Columns: `ns` structurals then `m` slacks.
    n: usize,
    /// Structural columns (original problem variables).
    ns: usize,
    /// Original coefficient matrix, `m × n` row-major (slack identity
    /// included).
    a0: Vec<f64>,
    /// Right-hand sides, unnormalized (no row flipping — the layout must
    /// not depend on bound or rhs signs, or bases would not be reusable).
    b: Vec<f64>,
    /// Per-column lower bounds (structurals then slacks).
    lower: Vec<f64>,
    /// Per-column upper bounds.
    upper: Vec<f64>,
    /// Minimization costs (slacks cost zero).
    cost: Vec<f64>,
    /// `+1` for minimize, `-1` for maximize (applied to costs).
    sign: f64,
}

/// Mutable solver state: the tableau `B⁻¹A`, the basic values, and the
/// column statuses.
struct Tableau {
    /// `B⁻¹A`, `m × n` row-major.
    a: Vec<f64>,
    /// Value of the basic variable of each row.
    xb: Vec<f64>,
    /// Basic column of each row.
    basis: Vec<usize>,
    /// Status of every column.
    status: Vec<ColStatus>,
}

impl Instance {
    fn build(problem: &Problem, lower: &[f64], upper: &[f64]) -> Instance {
        let ns = problem.num_vars();
        let m = problem.constraints.len();
        let n = ns + m;
        let mut a0 = vec![0.0; m * n];
        let mut b = vec![0.0; m];
        let mut lo = vec![0.0; n];
        let mut up = vec![0.0; n];
        lo[..ns].copy_from_slice(lower);
        up[..ns].copy_from_slice(upper);
        for (i, c) in problem.constraints.iter().enumerate() {
            for &(v, coef) in &c.terms {
                a0[i * n + v.0] += coef;
            }
            a0[i * n + ns + i] = 1.0;
            b[i] = c.rhs;
            // Sense as slack bounds: a·x + s = rhs.
            let (slo, sup) = match c.sense {
                Sense::Le => (0.0, f64::INFINITY),
                Sense::Ge => (f64::NEG_INFINITY, 0.0),
                Sense::Eq => (0.0, 0.0),
            };
            lo[ns + i] = slo;
            up[ns + i] = sup;
        }
        let sign = match problem.direction {
            Direction::Minimize => 1.0,
            Direction::Maximize => -1.0,
        };
        let mut cost = vec![0.0; n];
        for (c, &obj) in cost.iter_mut().zip(&problem.objective) {
            *c = obj * sign;
        }
        Instance {
            m,
            n,
            ns,
            a0,
            b,
            lower: lo,
            upper: up,
            cost,
            sign,
        }
    }

    fn max_iters(&self) -> usize {
        50 * (self.m + self.n + 10)
    }

    /// The resting value of a nonbasic column with the given status.
    fn nb_val(&self, j: usize, status: ColStatus) -> f64 {
        match status {
            ColStatus::AtLower => self.lower[j],
            ColStatus::AtUpper => self.upper[j],
            ColStatus::Free => 0.0,
            ColStatus::Basic => unreachable!("basic column has no resting value"),
        }
    }

    /// The all-slack starting tableau (`B = I`).
    fn cold_tableau(&self) -> Tableau {
        let mut status = Vec::with_capacity(self.n);
        for j in 0..self.ns {
            status.push(if self.lower[j].is_finite() {
                ColStatus::AtLower
            } else if self.upper[j].is_finite() {
                ColStatus::AtUpper
            } else {
                ColStatus::Free
            });
        }
        for _ in 0..self.m {
            status.push(ColStatus::Basic);
        }
        let basis: Vec<usize> = (self.ns..self.n).collect();
        let mut xb = self.b.clone();
        for (i, x) in xb.iter_mut().enumerate() {
            for (j, &st) in status.iter().enumerate().take(self.ns) {
                let coef = self.a0[i * self.n + j];
                if coef != 0.0 {
                    *x -= coef * self.nb_val(j, st);
                }
            }
        }
        Tableau {
            a: self.a0.clone(),
            xb,
            basis,
            status,
        }
    }

    fn solve_cold(&self) -> Result<Tableau, SolveError> {
        let mut t = self.cold_tableau();
        self.primal_phase1(&mut t)?;
        self.primal_phase2(&mut t)?;
        Ok(t)
    }

    /// Attempts a warm solve from `basis`. Any validation, factorization,
    /// or reoptimization hiccup returns `None` — the caller falls back to
    /// the cold path, which alone decides infeasible/unbounded verdicts.
    fn try_warm(&self, basis: &Basis) -> Option<Tableau> {
        let mut t = self.refactorize(basis)?;
        let dual_ok = self.is_dual_feasible(&t);
        if dual_ok {
            self.dual_simplex(&mut t).ok()?;
        } else if !self.is_primal_feasible(&t) {
            // Neither dual nor primal feasible: the basis buys nothing.
            return None;
        }
        self.primal_phase2(&mut t).ok()?;
        // Paranoia: never hand back a tableau that is not an optimum.
        if self.is_primal_feasible(&t) && self.is_dual_feasible(&t) {
            Some(t)
        } else {
            None
        }
    }

    /// Rebuilds the tableau for `basis` by Gauss-Jordan elimination with
    /// row pivoting. Returns `None` when the basis does not fit this
    /// problem or its columns are (near-)singular.
    fn refactorize(&self, basis: &Basis) -> Option<Tableau> {
        let (m, n) = (self.m, self.n);
        if basis.statuses.len() != n || basis.basic.len() != m {
            return None;
        }
        let mut n_basic = 0usize;
        for (j, &s) in basis.statuses.iter().enumerate() {
            match s {
                ColStatus::Basic => n_basic += 1,
                ColStatus::AtLower if !self.lower[j].is_finite() => return None,
                ColStatus::AtUpper if !self.upper[j].is_finite() => return None,
                _ => {}
            }
        }
        if n_basic != m {
            return None;
        }
        let mut seen = vec![false; n];
        for &c in &basis.basic {
            if c >= n || basis.statuses[c] != ColStatus::Basic || seen[c] {
                return None;
            }
            seen[c] = true;
        }

        let mut a = self.a0.clone();
        let mut rhs = self.b.clone();
        let mut assigned = vec![false; m];
        let mut new_basis = vec![usize::MAX; m];
        for &c in &basis.basic {
            // Partial pivoting over the rows not yet claimed by a basic
            // column; the basis is a set, so the row assignment is ours
            // to choose.
            let mut row = usize::MAX;
            let mut best = PIVOT_TOL;
            for (i, &taken) in assigned.iter().enumerate() {
                if !taken && a[i * n + c].abs() > best {
                    best = a[i * n + c].abs();
                    row = i;
                }
            }
            if row == usize::MAX {
                return None; // singular basis
            }
            let p = a[row * n + c];
            for v in &mut a[row * n..row * n + n] {
                *v /= p;
            }
            rhs[row] /= p;
            for i in 0..m {
                if i == row {
                    continue;
                }
                let factor = a[i * n + c];
                if factor == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a[i * n + j] -= factor * a[row * n + j];
                }
                a[i * n + c] = 0.0;
                rhs[i] -= factor * rhs[row];
            }
            assigned[row] = true;
            new_basis[row] = c;
        }

        // Basic values: x_B = B⁻¹b − Σ_nonbasic (B⁻¹A)_j · v_j.
        let status = basis.statuses.clone();
        let mut xb = rhs;
        for j in 0..n {
            if status[j] == ColStatus::Basic {
                continue;
            }
            let v = self.nb_val(j, status[j]);
            if v != 0.0 {
                for i in 0..m {
                    let coef = a[i * n + j];
                    if coef != 0.0 {
                        xb[i] -= coef * v;
                    }
                }
            }
        }
        Some(Tableau {
            a,
            xb,
            basis: new_basis,
            status,
        })
    }

    /// Reduced costs `r = c − c_B' B⁻¹A` for `costs`, written into `r`.
    fn price_into(&self, t: &Tableau, costs: &[f64], r: &mut [f64]) {
        r.copy_from_slice(costs);
        for i in 0..self.m {
            let cb = costs[t.basis[i]];
            if cb != 0.0 {
                let row = &t.a[i * self.n..(i + 1) * self.n];
                for (rj, &aij) in r.iter_mut().zip(row) {
                    *rj -= cb * aij;
                }
            }
        }
    }

    fn is_primal_feasible(&self, t: &Tableau) -> bool {
        t.xb.iter().zip(&t.basis).all(|(&x, &b)| {
            x >= self.lower[b] - FEAS_TOL * (1.0 + self.lower[b].abs())
                && x <= self.upper[b] + FEAS_TOL * (1.0 + self.upper[b].abs())
        })
    }

    fn is_dual_feasible(&self, t: &Tableau) -> bool {
        let mut r = vec![0.0; self.n];
        self.price_into(t, &self.cost, &mut r);
        (0..self.n).all(|j| match t.status[j] {
            ColStatus::Basic => true,
            // Fixed columns can never enter, so their sign is irrelevant.
            _ if self.lower[j] == self.upper[j] => true,
            ColStatus::AtLower => r[j] >= -DUAL_TOL,
            ColStatus::AtUpper => r[j] <= DUAL_TOL,
            ColStatus::Free => r[j].abs() <= DUAL_TOL,
        })
    }

    /// Picks the entering column for reduced costs `r`: the most negative
    /// improvement direction (Dantzig) or the first one (Bland). Returns
    /// `(column, direction)` where the direction is the sign of the
    /// entering variable's movement.
    fn pick_entering(&self, t: &Tableau, r: &[f64], bland: bool) -> Option<(usize, f64)> {
        let mut entering: Option<(usize, f64)> = None;
        let mut best = TOL;
        for (j, &rj) in r.iter().enumerate().take(self.n) {
            let (viol, sigma) = match t.status[j] {
                ColStatus::Basic => continue,
                _ if self.lower[j] == self.upper[j] => continue, // fixed
                ColStatus::AtLower => (-rj, 1.0),
                ColStatus::AtUpper => (rj, -1.0),
                ColStatus::Free => (rj.abs(), if rj > 0.0 { -1.0 } else { 1.0 }),
            };
            if viol > best {
                entering = Some((j, sigma));
                if bland {
                    break;
                }
                best = viol;
            }
        }
        entering
    }

    /// Moves entering column `e` by `sigma * step`, then either flips it
    /// to the opposite bound (`leave == None`) or pivots it into row `r`
    /// with the leaving variable parked at lower (`to_upper == false`) or
    /// upper.
    fn apply_step(
        &self,
        t: &mut Tableau,
        e: usize,
        sigma: f64,
        step: f64,
        leave: Option<(usize, bool)>,
    ) {
        let n = self.n;
        if step != 0.0 {
            for i in 0..self.m {
                let coef = t.a[i * n + e];
                if coef != 0.0 {
                    t.xb[i] -= sigma * step * coef;
                }
            }
        }
        match leave {
            None => {
                t.status[e] = match t.status[e] {
                    ColStatus::AtLower => ColStatus::AtUpper,
                    ColStatus::AtUpper => ColStatus::AtLower,
                    other => other,
                };
            }
            Some((r, to_upper)) => {
                let entering_val = self.nb_val(e, t.status[e]) + sigma * step;
                let leaving = t.basis[r];
                t.status[leaving] = if to_upper {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
                t.status[e] = ColStatus::Basic;
                Self::pivot(t, n, r, e);
                t.xb[r] = entering_val;
            }
        }
    }

    /// Pivots the tableau on `(row, col)`.
    fn pivot(t: &mut Tableau, n: usize, row: usize, col: usize) {
        let p = t.a[row * n + col];
        debug_assert!(p.abs() > 1e-12, "pivot on (near-)zero element");
        for v in &mut t.a[row * n..row * n + n] {
            *v /= p;
        }
        let m = t.xb.len();
        for i in 0..m {
            if i == row {
                continue;
            }
            let factor = t.a[i * n + col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..n {
                let pivot_v = t.a[row * n + j];
                t.a[i * n + j] -= factor * pivot_v;
            }
            t.a[i * n + col] = 0.0; // exact zero against round-off
        }
        t.basis[row] = col;
    }

    /// Composite phase 1: drive every basic variable inside its bounds by
    /// minimizing the total violation, with a first-breakpoint ratio test
    /// (an infeasible basic leaving through its violated bound is a kink,
    /// not a wall).
    fn primal_phase1(&self, t: &mut Tableau) -> Result<(), SolveError> {
        let (m, n) = (self.m, self.n);
        let bland_after = 10 * (m + n + 10);
        let mut d = vec![0.0; m]; // violation direction per row
        let mut r = vec![0.0; n];
        let mut costs = vec![0.0; n];
        for iter in 0..self.max_iters() {
            let mut infeasible = false;
            for ((di, &bi), &x) in d.iter_mut().zip(&t.basis).zip(&t.xb) {
                *di = if x < self.lower[bi] - FEAS_TOL * (1.0 + self.lower[bi].abs()) {
                    -1.0
                } else if x > self.upper[bi] + FEAS_TOL * (1.0 + self.upper[bi].abs()) {
                    1.0
                } else {
                    0.0
                };
                infeasible |= *di != 0.0;
            }
            if !infeasible {
                return Ok(());
            }
            // Phase-1 reduced costs: the violation decreases at rate
            // |r_j| along an eligible entering direction.
            costs.iter_mut().for_each(|c| *c = 0.0);
            r.iter_mut().for_each(|v| *v = 0.0);
            for (i, &di) in d.iter().enumerate() {
                if di != 0.0 {
                    let row = &t.a[i * n..(i + 1) * n];
                    for (rj, &aij) in r.iter_mut().zip(row) {
                        *rj -= di * aij;
                    }
                }
            }
            let Some((e, sigma)) = self.pick_entering(t, &r, iter >= bland_after) else {
                return Err(SolveError::Infeasible);
            };

            // First-breakpoint ratio test.
            let mut step = self.flip_cap(t, e);
            let mut leave: Option<(usize, bool)> = None;
            for (i, &di) in d.iter().enumerate() {
                let alpha = t.a[i * n + e];
                let rate = -sigma * alpha;
                if rate.abs() <= TOL {
                    continue;
                }
                let bi = t.basis[i];
                // Which bound does this basic run into (or, if currently
                // violated, become feasible at)?
                let (limit, to_upper) = if di == -1.0 {
                    if rate <= 0.0 {
                        continue; // moving further below its lower bound
                    }
                    (self.lower[bi], false)
                } else if di == 1.0 {
                    if rate >= 0.0 {
                        continue;
                    }
                    (self.upper[bi], true)
                } else if rate > 0.0 {
                    if !self.upper[bi].is_finite() {
                        continue;
                    }
                    (self.upper[bi], true)
                } else {
                    if !self.lower[bi].is_finite() {
                        continue;
                    }
                    (self.lower[bi], false)
                };
                let tstep = ((limit - t.xb[i]) / rate).max(0.0);
                if self.tighter(t, tstep, i, step, leave) {
                    step = step.min(tstep);
                    leave = Some((i, to_upper));
                }
            }
            if leave.is_none() && !step.is_finite() {
                // The violation would decrease forever — numerically
                // impossible (it is bounded below by zero); bail out.
                return Err(SolveError::IterationLimit);
            }
            self.apply_step(t, e, sigma, step, leave);
        }
        Err(SolveError::IterationLimit)
    }

    /// Primal phase 2 from a primal-feasible tableau.
    fn primal_phase2(&self, t: &mut Tableau) -> Result<(), SolveError> {
        let (m, n) = (self.m, self.n);
        let bland_after = 10 * (m + n + 10);
        let mut r = vec![0.0; n];
        for iter in 0..self.max_iters() {
            self.price_into(t, &self.cost, &mut r);
            let Some((e, sigma)) = self.pick_entering(t, &r, iter >= bland_after) else {
                return Ok(());
            };

            let mut step = self.flip_cap(t, e);
            let mut leave: Option<(usize, bool)> = None;
            for i in 0..m {
                let alpha = t.a[i * n + e];
                let rate = -sigma * alpha;
                if rate.abs() <= TOL {
                    continue;
                }
                let bi = t.basis[i];
                let (limit, to_upper) = if rate > 0.0 {
                    if !self.upper[bi].is_finite() {
                        continue;
                    }
                    (self.upper[bi], true)
                } else {
                    if !self.lower[bi].is_finite() {
                        continue;
                    }
                    (self.lower[bi], false)
                };
                let tstep = ((limit - t.xb[i]) / rate).max(0.0);
                if self.tighter(t, tstep, i, step, leave) {
                    step = step.min(tstep);
                    leave = Some((i, to_upper));
                }
            }
            if leave.is_none() && !step.is_finite() {
                return Err(SolveError::Unbounded);
            }
            self.apply_step(t, e, sigma, step, leave);
        }
        Err(SolveError::IterationLimit)
    }

    /// How far the entering column can travel before hitting its own
    /// opposite bound (a bound flip, no pivot needed).
    fn flip_cap(&self, t: &Tableau, e: usize) -> f64 {
        match t.status[e] {
            ColStatus::AtLower | ColStatus::AtUpper => self.upper[e] - self.lower[e],
            _ => f64::INFINITY,
        }
    }

    /// Ratio-test tie-breaking: a row beats the current candidate when
    /// its step is strictly smaller, or ties within tolerance with a
    /// smaller basic column index (the Bland-style tie-break the old
    /// solver used). A row always beats a same-step bound flip.
    fn tighter(
        &self,
        t: &Tableau,
        tstep: f64,
        row: usize,
        best: f64,
        leave: Option<(usize, bool)>,
    ) -> bool {
        match leave {
            None => tstep < best + TOL,
            Some((l, _)) => tstep < best - TOL || (tstep < best + TOL && t.basis[row] < t.basis[l]),
        }
    }

    /// Bounded dual simplex: starting dual feasible, repair primal
    /// feasibility row by row while keeping the reduced costs signed.
    fn dual_simplex(&self, t: &mut Tableau) -> Result<(), SolveError> {
        let (m, n) = (self.m, self.n);
        let mut r = vec![0.0; n];
        for _ in 0..self.max_iters() {
            // Leaving row: the most violated basic.
            let mut leave: Option<(usize, bool)> = None; // (row, below lower)
            let mut worst: f64 = 0.0;
            for i in 0..m {
                let bi = t.basis[i];
                let below = (self.lower[bi] - t.xb[i]) / (1.0 + self.lower[bi].abs());
                let above = (t.xb[i] - self.upper[bi]) / (1.0 + self.upper[bi].abs());
                if below > worst.max(FEAS_TOL) {
                    worst = below;
                    leave = Some((i, true));
                }
                if above > worst.max(FEAS_TOL) {
                    worst = above;
                    leave = Some((i, false));
                }
            }
            let Some((row, below)) = leave else {
                return Ok(()); // primal feasible
            };

            self.price_into(t, &self.cost, &mut r);
            // Entering column: the dual ratio test — smallest |r_j / α_j|
            // over columns whose movement pushes the leaving basic toward
            // its violated bound — keeps every reduced cost signed.
            let mut best: Option<(usize, f64)> = None;
            for (j, &rj) in r.iter().enumerate().take(n) {
                if t.status[j] == ColStatus::Basic || self.lower[j] == self.upper[j] {
                    continue;
                }
                let alpha = t.a[row * n + j];
                if alpha.abs() <= TOL {
                    continue;
                }
                let eligible = match t.status[j] {
                    ColStatus::AtLower => {
                        if below {
                            alpha < 0.0
                        } else {
                            alpha > 0.0
                        }
                    }
                    ColStatus::AtUpper => {
                        if below {
                            alpha > 0.0
                        } else {
                            alpha < 0.0
                        }
                    }
                    ColStatus::Free => true,
                    ColStatus::Basic => unreachable!(),
                };
                if !eligible {
                    continue;
                }
                let ratio = (rj / alpha).abs();
                let better = match best {
                    None => true,
                    Some((bj, br)) => ratio < br - TOL || (ratio < br + TOL && j < bj),
                };
                if better {
                    best = Some((j, ratio));
                }
            }
            // No eligible column certifies primal infeasibility, but the
            // warm path treats any non-optimal outcome as "fall back to
            // the cold solve" — let the caller surface it as an error.
            let Some((e, _)) = best else {
                return Err(SolveError::Infeasible);
            };

            let alpha = t.a[row * n + e];
            let sigma = if below {
                -alpha.signum()
            } else {
                alpha.signum()
            };
            let bi = t.basis[row];
            let target = if below {
                self.lower[bi]
            } else {
                self.upper[bi]
            };
            let rate = -sigma * alpha;
            let step = ((target - t.xb[row]) / rate).max(0.0);
            self.apply_step(t, e, sigma, step, Some((row, !below)));
        }
        Err(SolveError::IterationLimit)
    }

    /// Reads the solution out of an optimal tableau.
    fn extract(&self, t: &Tableau) -> LpSolution {
        let mut values = vec![0.0; self.ns];
        for (j, v) in values.iter_mut().enumerate() {
            if t.status[j] != ColStatus::Basic {
                *v = self.nb_val(j, t.status[j]);
            }
        }
        for i in 0..self.m {
            if t.basis[i] < self.ns {
                values[t.basis[i]] = t.xb[i];
            }
        }
        // Snap to bounds against round-off.
        for (j, v) in values.iter_mut().enumerate() {
            if *v < self.lower[j] {
                *v = self.lower[j];
            }
            if *v > self.upper[j] {
                *v = self.upper[j];
            }
        }
        let min_obj: f64 = values.iter().zip(&self.cost).map(|(v, c)| v * c).sum();
        LpSolution {
            objective: min_obj * self.sign,
            values,
            basis: Basis {
                statuses: t.status.clone(),
                basic: t.basis.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Direction, Problem, Sense, VarKind};

    fn cont(p: &mut Problem, name: &str) -> crate::problem::VarId {
        p.add_var(name, VarKind::Continuous, 0.0, f64::INFINITY)
    }

    #[test]
    fn textbook_max() {
        // max 3x + 2y st x+y<=4, x+3y<=6 → (4,0), obj 12.
        let mut p = Problem::new(Direction::Maximize);
        let x = cont(&mut p, "x");
        let y = cont(&mut p, "y");
        p.add_constraint("c1", &[(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
        p.add_constraint("c2", &[(x, 1.0), (y, 3.0)], Sense::Le, 6.0);
        p.set_objective(&[(x, 3.0), (y, 2.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 12.0).abs() < 1e-8);
        assert!((s.values[0] - 4.0).abs() < 1e-8);
        assert!(s.values[1].abs() < 1e-8);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y st x + y >= 10, x <= 6 → x=6, y=4, obj 24.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 6.0);
        let y = cont(&mut p, "y");
        p.add_constraint("demand", &[(x, 1.0), (y, 1.0)], Sense::Ge, 10.0);
        p.set_objective(&[(x, 2.0), (y, 3.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 24.0).abs() < 1e-8);
        assert!((s.values[0] - 6.0).abs() < 1e-8);
        assert!((s.values[1] - 4.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraint() {
        // max x + y st x + 2y = 4, x <= 2 → x=2, y=1, obj 3.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 2.0);
        let y = cont(&mut p, "y");
        p.add_constraint("eq", &[(x, 1.0), (y, 2.0)], Sense::Eq, 4.0);
        p.set_objective(&[(x, 1.0), (y, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-8);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 1.0);
        p.add_constraint("impossible", &[(x, 1.0)], Sense::Ge, 5.0);
        p.set_objective(&[(x, 1.0)]);
        assert_eq!(solve_lp(&p), Err(SolveError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Direction::Maximize);
        let x = cont(&mut p, "x");
        p.set_objective(&[(x, 1.0)]);
        assert_eq!(solve_lp(&p), Err(SolveError::Unbounded));
    }

    #[test]
    fn bounded_by_upper_bound_only() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 7.5);
        p.set_objective(&[(x, 2.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 15.0).abs() < 1e-8);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x + y with x >= 3, y >= 2, x + y >= 8 → obj 8.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", VarKind::Continuous, 3.0, f64::INFINITY);
        let y = p.add_var("y", VarKind::Continuous, 2.0, f64::INFINITY);
        p.add_constraint("c", &[(x, 1.0), (y, 1.0)], Sense::Ge, 8.0);
        p.set_objective(&[(x, 1.0), (y, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-8);
        assert!(s.values[0] >= 3.0 - 1e-9);
        assert!(s.values[1] >= 2.0 - 1e-9);
    }

    #[test]
    fn free_variable_split() {
        // min |ish|: minimize y st y >= x - 4, y >= 4 - x with x free → any x
        // near 4 gives y = 0.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", VarKind::Continuous, f64::NEG_INFINITY, f64::INFINITY);
        let y = cont(&mut p, "y");
        p.add_constraint("a", &[(y, 1.0), (x, -1.0)], Sense::Ge, -4.0);
        p.add_constraint("b", &[(y, 1.0), (x, 1.0)], Sense::Ge, 4.0);
        p.set_objective(&[(y, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!(s.objective.abs() < 1e-8);
        assert!((s.values[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // x - y <= -2 with x,y in [0,10]; max x → x = 8 when y = 10.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 10.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, 10.0);
        p.add_constraint("gap", &[(x, 1.0), (y, -1.0)], Sense::Le, -2.0);
        p.set_objective(&[(x, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints intersecting at the optimum.
        let mut p = Problem::new(Direction::Maximize);
        let x = cont(&mut p, "x");
        let y = cont(&mut p, "y");
        p.add_constraint("a", &[(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        p.add_constraint("b", &[(x, 2.0), (y, 2.0)], Sense::Le, 2.0);
        p.add_constraint("c", &[(x, 1.0)], Sense::Le, 1.0);
        p.add_constraint("d", &[(y, 1.0)], Sense::Le, 1.0);
        p.set_objective(&[(x, 1.0), (y, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-8);
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", VarKind::Continuous, 2.5, 2.5);
        let y = p.add_var("y", VarKind::Continuous, 0.0, 10.0);
        p.add_constraint("c", &[(x, 1.0), (y, 1.0)], Sense::Le, 5.0);
        p.set_objective(&[(y, 1.0)]);
        let s = solve_lp(&p).unwrap();
        assert!((s.values[0] - 2.5).abs() < 1e-9);
        assert!((s.objective - 2.5).abs() < 1e-8);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            format!("{}", SolveError::Infeasible),
            "problem is infeasible"
        );
        assert_eq!(format!("{}", SolveError::Unbounded), "problem is unbounded");
    }

    fn sample_problem() -> Problem {
        // min 2x + 3y + z st x + y >= 10, y + z = 4, x <= 6, z <= 3.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 6.0);
        let y = cont(&mut p, "y");
        let z = p.add_var("z", VarKind::Continuous, 0.0, 3.0);
        p.add_constraint("demand", &[(x, 1.0), (y, 1.0)], Sense::Ge, 10.0);
        p.add_constraint("link", &[(y, 1.0), (z, 1.0)], Sense::Eq, 4.0);
        p.set_objective(&[(x, 2.0), (y, 3.0), (z, 1.0)]);
        p
    }

    #[test]
    fn warm_restart_from_own_basis_reproduces_the_optimum() {
        let p = sample_problem();
        let cold = solve_lp(&p).unwrap();
        let warm =
            solve_lp_with_bounds(&p, &p.lower_bounds(), &p.upper_bounds(), Some(&cold.basis))
                .unwrap();
        assert_eq!(warm.values, cold.values);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_restart_after_bound_change_matches_cold() {
        // min 2x + 3y st x + y >= 10, x in [0, 6] → (6, 4), obj 24.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", VarKind::Continuous, 0.0, 6.0);
        let y = cont(&mut p, "y");
        p.add_constraint("demand", &[(x, 1.0), (y, 1.0)], Sense::Ge, 10.0);
        p.set_objective(&[(x, 2.0), (y, 3.0)]);
        let cold = solve_lp(&p).unwrap();
        // Tighten x's upper bound to 3: the parent basis stays dual
        // feasible and the dual simplex repairs primal feasibility,
        // landing on (3, 7), obj 27.
        let mut upper = p.upper_bounds();
        upper[0] = 3.0;
        let lower = p.lower_bounds();
        let warm = solve_lp_with_bounds(&p, &lower, &upper, Some(&cold.basis)).unwrap();
        let re_cold = solve_lp_with_bounds(&p, &lower, &upper, None).unwrap();
        assert!((warm.objective - 27.0).abs() < 1e-8);
        assert!((warm.objective - re_cold.objective).abs() < 1e-8);
        for (a, b) in warm.values.iter().zip(&re_cold.values) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn warm_restart_agrees_with_cold_on_infeasible_children() {
        let p = sample_problem();
        let cold = solve_lp(&p).unwrap();
        // y + z = 4 caps y at 4, so x >= 6; tightening x below that is
        // infeasible, and the warm path must agree with the cold verdict.
        let mut upper = p.upper_bounds();
        upper[0] = 4.0;
        let lower = p.lower_bounds();
        let warm = solve_lp_with_bounds(&p, &lower, &upper, Some(&cold.basis));
        assert_eq!(warm, Err(SolveError::Infeasible));
    }

    #[test]
    fn singular_basis_falls_back_to_phase_one() {
        let p = sample_problem();
        let cold = solve_lp(&p).unwrap();
        let n = cold.basis.num_cols();
        // A deliberately singular basis: x (appearing in row 0 only) and
        // the row-0 slack span a single row, so the refactorization runs
        // out of pivotable rows and must fall back to the cold two-phase
        // path rather than erroring.
        let mut st = vec![ColStatus::AtLower; n];
        st[0] = ColStatus::Basic;
        st[3] = ColStatus::Basic;
        let singular = Basis::from_parts(st, vec![0, 3]);
        let warm = solve_lp_with_bounds(&p, &p.lower_bounds(), &p.upper_bounds(), Some(&singular))
            .unwrap();
        assert_eq!(warm.values, cold.values);
        // A shape-mismatched basis is likewise ignored.
        let stale = Basis::from_parts(vec![ColStatus::AtLower; 2], vec![0]);
        let warm2 =
            solve_lp_with_bounds(&p, &p.lower_bounds(), &p.upper_bounds(), Some(&stale)).unwrap();
        assert_eq!(warm2.values, cold.values);
    }

    #[test]
    fn basis_accessors_report_shape() {
        let p = sample_problem();
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.basis.num_cols(), p.num_vars() + 2);
        assert_eq!(s.basis.num_rows(), 2);
    }
}
