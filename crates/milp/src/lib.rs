//! # diffserve-milp
//!
//! A from-scratch linear and mixed-integer linear programming solver.
//!
//! The DiffServe paper formulates its resource-allocation problem as a MILP
//! and solves it with Gurobi (§3.3, §4.5). Gurobi is proprietary, so this
//! crate provides the substitute substrate: a dense bounded-variable
//! primal/dual simplex ([`solve_lp`]) and a best-first branch & bound
//! ([`solve_milp`]) over it, behind a small modelling API ([`Problem`]).
//! Every LP solve returns its optimal [`Basis`], and related solves
//! (branch & bound children, tick-to-tick controller re-solves) restart
//! from it with a dual-simplex reoptimization instead of a full two-phase
//! run.
//!
//! The DiffServe allocation instances are tiny by MILP standards (tens of
//! integer variables, tens of constraints), and the paper reports ~10 ms
//! solve times on Gurobi; the `milp_solver` Criterion bench in
//! `diffserve-bench` verifies this solver lands in the same regime.
//!
//! # Examples
//!
//! ```
//! use diffserve_milp::{solve_milp, Direction, MilpOptions, Problem, Sense, VarKind};
//!
//! // Allocate 4 servers between two models; each light server handles 10
//! // QPS, each heavy server 2 QPS; need 20 light-QPS and 4 heavy-QPS.
//! let mut p = Problem::new(Direction::Minimize);
//! let x1 = p.add_var("light", VarKind::Integer, 0.0, 4.0);
//! let x2 = p.add_var("heavy", VarKind::Integer, 0.0, 4.0);
//! p.add_constraint("light-demand", &[(x1, 10.0)], Sense::Ge, 20.0);
//! p.add_constraint("heavy-demand", &[(x2, 2.0)], Sense::Ge, 4.0);
//! p.set_objective(&[(x1, 1.0), (x2, 1.0)]);
//! let sol = solve_milp(&p, &MilpOptions::default())?;
//! assert_eq!(sol.values, vec![2.0, 2.0]);
//! # Ok::<(), diffserve_milp::SolveError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
pub mod problem;
pub mod simplex;

pub use branch::{solve_milp, solve_milp_warm, MilpOptions, MilpSolution, WarmStart, INT_TOL};
pub use problem::{Direction, Problem, Sense, VarId, VarKind};
pub use simplex::{solve_lp, solve_lp_with_bounds, Basis, ColStatus, LpSolution, SolveError, TOL};
