//! Gradient-descent optimizers.

use std::collections::HashMap;

/// A first-order optimizer updating flat parameter slices.
///
/// Parameters are identified by a caller-assigned `slot` so that stateful
/// optimizers (momentum, Adam moments) can keep per-parameter buffers.
pub trait Optimizer {
    /// Applies one update to `param` given `grad`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `param` and `grad` lengths differ, or if a
    /// slot changes size between calls.
    fn update(&mut self, slot: usize, param: &mut [f64], grad: &[f64]);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: HashMap<usize, Vec<f64>>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and momentum coefficient
    /// `momentum` (0 disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must lie in [0, 1), got {momentum}"
        );
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        if self.momentum == 0.0 {
            for (p, g) in param.iter_mut().zip(grad) {
                *p -= self.lr * g;
            }
            return;
        }
        let v = self
            .velocity
            .entry(slot)
            .or_insert_with(|| vec![0.0; param.len()]);
        assert_eq!(v.len(), param.len(), "slot {slot} changed size");
        for ((p, g), vel) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vel = self.momentum * *vel - self.lr * g;
            *p += *vel;
        }
    }
}

/// Adam (Kingma & Ba) with bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    state: HashMap<usize, AdamSlot>,
}

#[derive(Debug, Clone)]
struct AdamSlot {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam with the standard defaults `beta1 = 0.9`,
    /// `beta2 = 0.999`, `eps = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        Self::with_params(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates Adam with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range hyperparameters.
    pub fn with_params(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must lie in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must lie in [0, 1)");
        assert!(eps > 0.0, "eps must be positive");
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            state: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn update(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        let s = self.state.entry(slot).or_insert_with(|| AdamSlot {
            m: vec![0.0; param.len()],
            v: vec![0.0; param.len()],
            t: 0,
        });
        assert_eq!(s.m.len(), param.len(), "slot {slot} changed size");
        s.t += 1;
        let bc1 = 1.0 - self.beta1.powi(s.t as i32);
        let bc2 = 1.0 - self.beta2.powi(s.t as i32);
        for i in 0..param.len() {
            s.m[i] = self.beta1 * s.m[i] + (1.0 - self.beta1) * grad[i];
            s.v[i] = self.beta2 * s.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = s.m[i] / bc1;
            let v_hat = s.v[i] / bc2;
            param[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = (x - 3)^2 should converge near 3.
    fn descend(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = [0.0f64];
        for _ in 0..steps {
            let grad = [2.0 * (x[0] - 3.0)];
            opt.update(0, &mut x, &grad);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = descend(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6, "x={x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let x = descend(&mut opt, 400);
        assert!((x - 3.0).abs() < 1e-4, "x={x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = descend(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-3, "x={x}");
    }

    #[test]
    fn slots_have_independent_state() {
        let mut opt = Adam::new(0.1);
        let mut a = [0.0f64];
        let mut b = [10.0f64];
        for _ in 0..300 {
            let ga = [2.0 * (a[0] - 1.0)];
            opt.update(0, &mut a, &ga);
            let gb = [2.0 * (b[0] - 5.0)];
            opt.update(1, &mut b, &gb);
        }
        assert!((a[0] - 1.0).abs() < 1e-2);
        assert!((b[0] - 5.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_lr() {
        let _ = Sgd::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_grad() {
        let mut opt = Sgd::new(0.1, 0.0);
        let mut x = [0.0f64, 1.0];
        opt.update(0, &mut x, &[1.0]);
    }
}
