//! Dense layers and activations.

use diffserve_linalg::Mat;
use rand::Rng;

/// A fully-connected layer `y = x·W + b`.
///
/// Weights are stored `(in × out)` so a batch `(n × in)` maps to `(n × out)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    w: Mat,
    b: Vec<f64>,
}

impl Dense {
    /// Creates a layer with He-initialized weights and zero biases.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "layer dimensions must be positive"
        );
        let std = (2.0 / inputs as f64).sqrt();
        // Box–Muller-free init: uniform scaled to match He variance closely
        // enough for these shallow nets, kept dependency-free.
        let half_width = std * 3.0f64.sqrt();
        let w = Mat::from_fn(inputs, outputs, |_, _| {
            rng.gen_range(-half_width..half_width)
        });
        Dense {
            w,
            b: vec![0.0; outputs],
        }
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass for a batch `(n × in)`.
    ///
    /// # Panics
    ///
    /// Panics if the batch width does not match the layer input width.
    pub fn forward(&self, x: &Mat) -> Mat {
        let mut out = x.matmul(&self.w);
        for i in 0..out.rows() {
            for (j, &b) in self.b.iter().enumerate() {
                out[(i, j)] += b;
            }
        }
        out
    }

    /// Backward pass. Given the upstream gradient `d_out` `(n × out)` and the
    /// cached forward input `x`, returns `(d_x, d_w, d_b)`.
    pub fn backward(&self, x: &Mat, d_out: &Mat) -> (Mat, Mat, Vec<f64>) {
        let d_x = d_out.matmul(&self.w.transpose());
        let d_w = x.transpose().matmul(d_out);
        let mut d_b = vec![0.0; self.outputs()];
        for i in 0..d_out.rows() {
            for (j, db) in d_b.iter_mut().enumerate() {
                *db += d_out[(i, j)];
            }
        }
        (d_x, d_w, d_b)
    }

    /// Mutable access to the weights (used by optimizers).
    pub(crate) fn params_mut(&mut self) -> (&mut Mat, &mut Vec<f64>) {
        (&mut self.w, &mut self.b)
    }

    /// Shared access to the weights.
    pub fn weights(&self) -> &Mat {
        &self.w
    }

    /// Shared access to the biases.
    pub fn biases(&self) -> &[f64] {
        &self.b
    }
}

/// Element-wise ReLU.
pub fn relu(x: &Mat) -> Mat {
    Mat::from_fn(x.rows(), x.cols(), |i, j| x[(i, j)].max(0.0))
}

/// Gradient of ReLU given the forward *input* and upstream gradient.
pub fn relu_backward(input: &Mat, d_out: &Mat) -> Mat {
    Mat::from_fn(input.rows(), input.cols(), |i, j| {
        if input[(i, j)] > 0.0 {
            d_out[(i, j)]
        } else {
            0.0
        }
    })
}

/// Row-wise numerically-stable softmax.
pub fn softmax(logits: &Mat) -> Mat {
    let mut out = Mat::zeros(logits.rows(), logits.cols());
    for i in 0..logits.rows() {
        let row_max = logits
            .row(i)
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for j in 0..logits.cols() {
            let e = (logits[(i, j)] - row_max).exp();
            out[(i, j)] = e;
            sum += e;
        }
        for j in 0..logits.cols() {
            out[(i, j)] /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        {
            let (w, b) = layer.params_mut();
            *w = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
            b.copy_from_slice(&[0.5, -0.5]);
        }
        let x = Mat::from_rows(&[&[1.0, 2.0, 3.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.rows(), 1);
        assert_eq!(y.cols(), 2);
        assert!((y[(0, 0)] - 4.5).abs() < 1e-12);
        assert!((y[(0, 1)] - 4.5).abs() < 1e-12);
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Mat::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        let y = relu(&x);
        assert_eq!(y[(0, 0)], 0.0);
        assert_eq!(y[(0, 1)], 2.0);
        assert_eq!(y[(1, 1)], 0.0);
    }

    #[test]
    fn relu_backward_masks() {
        let input = Mat::from_rows(&[&[-1.0, 2.0]]);
        let d_out = Mat::from_rows(&[&[5.0, 5.0]]);
        let d_in = relu_backward(&input, &d_out);
        assert_eq!(d_in[(0, 0)], 0.0);
        assert_eq!(d_in[(0, 1)], 5.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let p = softmax(&logits);
        for i in 0..2 {
            let sum: f64 = p.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        // Large logits must not overflow.
        assert!((p[(1, 0)] - 1.0 / 3.0).abs() < 1e-12);
        // Monotonic in logits.
        assert!(p[(0, 2)] > p[(0, 1)] && p[(0, 1)] > p[(0, 0)]);
    }

    #[test]
    fn dense_backward_gradient_check() {
        // Finite-difference check of dW on a tiny layer.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Mat::from_rows(&[&[0.3, -0.7], &[1.1, 0.4]]);
        // Loss = sum(forward(x)) → d_out is all ones.
        let d_out = Mat::from_fn(2, 2, |_, _| 1.0);
        let (_, d_w, d_b) = layer.backward(&x, &d_out);

        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..2 {
                let base: f64 = layer.forward(&x).as_slice().iter().sum();
                {
                    let (w, _) = layer.params_mut();
                    w[(i, j)] += eps;
                }
                let bumped: f64 = layer.forward(&x).as_slice().iter().sum();
                {
                    let (w, _) = layer.params_mut();
                    w[(i, j)] -= eps;
                }
                let numeric = (bumped - base) / eps;
                assert!(
                    (numeric - d_w[(i, j)]).abs() < 1e-4,
                    "dW[{i}{j}]: numeric={numeric} analytic={}",
                    d_w[(i, j)]
                );
            }
        }
        // Bias gradient: each output column receives batch-size ones.
        assert!((d_b[0] - 2.0).abs() < 1e-12);
        assert!((d_b[1] - 2.0).abs() < 1e-12);
    }
}
