//! # diffserve-nn
//!
//! A minimal neural-network substrate: dense layers, ReLU/softmax,
//! cross-entropy, SGD/Adam, and a training loop.
//!
//! The DiffServe paper's discriminator is an EfficientNet-V2 trained to
//! classify images as *real* (ground-truth photographs) or *fake*
//! (diffusion-model outputs); its softmax confidence gates the light→heavy
//! cascade (paper §3.2). In this reproduction the image substrate emits
//! feature vectors rather than pixels, so the discriminator is an [`Mlp`]
//! trained on those features with the exact same objective and the same
//! confidence-thresholding downstream. Architecture ablations (ResNet-34,
//! ViT-B16, EfficientNet trained on fake positives — paper Fig. 7) map to
//! different capacities and training sets in `diffserve-imagegen`.
//!
//! # Examples
//!
//! ```
//! use diffserve_nn::{Adam, Mlp, TrainConfig, accuracy};
//! use diffserve_linalg::Mat;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut clf = Mlp::new(&[2, 12, 2], &mut rng);
//! let x = Mat::from_rows(&[&[2.0, 2.0], &[-2.0, -2.0], &[2.2, 1.8], &[-1.9, -2.1]]);
//! let y = [0usize, 1, 0, 1];
//! let mut opt = Adam::new(0.05);
//! clf.fit(&x, &y, &mut opt, &TrainConfig::default(), &mut rng);
//! assert_eq!(accuracy(&clf.predict(&x), &y), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;

pub use layer::{relu, relu_backward, softmax, Dense};
pub use loss::{mse, softmax_cross_entropy};
pub use model::{accuracy, auc, EpochStats, Mlp, TrainConfig};
pub use optim::{Adam, Optimizer, Sgd};
