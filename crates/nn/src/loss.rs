//! Loss functions.

use diffserve_linalg::Mat;

use crate::layer::softmax;

/// Softmax cross-entropy over a batch of logits.
///
/// Returns the mean loss and the gradient with respect to the logits
/// (`(softmax - onehot) / n`), the canonical fused form.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or any label is out
/// of range.
pub fn softmax_cross_entropy(logits: &Mat, labels: &[usize]) -> (f64, Mat) {
    let n = logits.rows();
    assert_eq!(labels.len(), n, "one label per batch row required");
    let probs = softmax(logits);
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label {label} out of range");
        // Clamp for numerical safety; softmax never returns exact zero but
        // denormals can round down.
        loss -= probs[(i, label)].max(1e-300).ln();
        grad[(i, label)] -= 1.0;
    }
    let scale = 1.0 / n as f64;
    (loss * scale, grad.scale(scale))
}

/// Mean squared error and its gradient for a batch of predictions.
///
/// # Panics
///
/// Panics on a shape mismatch.
pub fn mse(pred: &Mat, target: &Mat) -> (f64, Mat) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse shape mismatch"
    );
    let n = (pred.rows() * pred.cols()) as f64;
    let diff = pred - target;
    let loss = diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n;
    (loss, diff.scale(2.0 / n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let logits = Mat::from_rows(&[&[20.0, -20.0], &[-20.0, 20.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-10, "loss={loss}");
    }

    #[test]
    fn cross_entropy_uniform_is_ln_k() {
        let logits = Mat::from_rows(&[&[0.0, 0.0, 0.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!((loss - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let logits = Mat::from_rows(&[&[0.2, -0.4, 0.9], &[1.0, 0.0, -1.0]]);
        let labels = [2usize, 0usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..3 {
                let mut bumped = logits.clone();
                bumped[(i, j)] += eps;
                let (lp, _) = softmax_cross_entropy(&bumped, &labels);
                let mut dipped = logits.clone();
                dipped[(i, j)] -= eps;
                let (lm, _) = softmax_cross_entropy(&dipped, &labels);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grad[(i, j)]).abs() < 1e-6,
                    "grad[{i}{j}] numeric={numeric} analytic={}",
                    grad[(i, j)]
                );
            }
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // Softmax CE gradient per row sums to zero (probs sum 1, minus one).
        let logits = Mat::from_rows(&[&[0.5, 1.5, -0.7]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let sum: f64 = grad.row(0).iter().sum();
        assert!(sum.abs() < 1e-12);
    }

    #[test]
    fn mse_known_value() {
        let pred = Mat::from_rows(&[&[1.0, 2.0]]);
        let target = Mat::from_rows(&[&[0.0, 0.0]]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-12);
        assert!((grad[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((grad[(0, 1)] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        let logits = Mat::from_rows(&[&[0.0, 0.0]]);
        let _ = softmax_cross_entropy(&logits, &[5]);
    }
}
