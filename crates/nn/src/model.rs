//! Multi-layer perceptron classifier with a built-in training loop.

use diffserve_linalg::Mat;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::layer::{relu, relu_backward, softmax, Dense};
use crate::loss::softmax_cross_entropy;
use crate::optim::Optimizer;

/// A feed-forward classifier: dense layers with ReLU between them and a
/// linear logit head.
///
/// This is the substrate behind the DiffServe discriminator: the paper uses
/// EfficientNet-V2 on pixels; the reproduction trains an MLP on the synthetic
/// image features that stand in for pixels (see `diffserve-imagegen`).
///
/// # Examples
///
/// ```
/// use diffserve_nn::{Adam, Mlp, TrainConfig};
/// use diffserve_linalg::Mat;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut model = Mlp::new(&[2, 8, 2], &mut rng);
/// // Learn y = x0 > x1 from a handful of points.
/// let x = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.9, 0.1], &[0.2, 0.8]]);
/// let y = [0usize, 1, 0, 1];
/// let mut opt = Adam::new(0.05);
/// model.fit(&x, &y, &mut opt, &TrainConfig { epochs: 200, batch_size: 4, shuffle: true }, &mut rng);
/// assert_eq!(model.predict(&x), vec![0, 1, 0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Training-loop hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Whether to reshuffle the data each epoch.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 64,
            shuffle: true,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Mean training loss over the epoch's batches.
    pub loss: f64,
    /// Training accuracy measured after the epoch.
    pub accuracy: f64,
}

impl Mlp {
    /// Creates an MLP from layer widths, e.g. `&[16, 32, 2]` for a
    /// 16-feature input, one hidden layer of 32, and 2 output classes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn new<R: Rng + ?Sized>(widths: &[usize], rng: &mut R) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let layers = widths
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Number of dense layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.inputs() * l.outputs() + l.outputs())
            .sum()
    }

    /// Forward pass returning logits for a batch `(n × in)`.
    pub fn logits(&self, x: &Mat) -> Mat {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                h = relu(&h);
            }
        }
        h
    }

    /// Class probabilities (softmax of the logits).
    pub fn predict_proba(&self, x: &Mat) -> Mat {
        softmax(&self.logits(x))
    }

    /// Hard class predictions (argmax).
    pub fn predict(&self, x: &Mat) -> Vec<usize> {
        let p = self.logits(x);
        (0..p.rows())
            .map(|i| {
                let row = p.row(i);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(j, _)| j)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// One forward+backward pass on a batch, applying the optimizer.
    /// Returns the batch loss.
    ///
    /// # Panics
    ///
    /// Panics if shapes or labels are inconsistent.
    pub fn train_batch(&mut self, x: &Mat, labels: &[usize], optimizer: &mut dyn Optimizer) -> f64 {
        // Forward, caching layer inputs (post-activation) and pre-activations.
        let mut inputs: Vec<Mat> = Vec::with_capacity(self.layers.len());
        let mut pre_acts: Vec<Mat> = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(h.clone());
            let z = layer.forward(&h);
            pre_acts.push(z.clone());
            h = if i + 1 < self.layers.len() {
                relu(&z)
            } else {
                z
            };
        }
        let (loss, mut d_out) = softmax_cross_entropy(&h, labels);

        // Backward.
        for i in (0..self.layers.len()).rev() {
            let (d_x, d_w, d_b) = self.layers[i].backward(&inputs[i], &d_out);
            let (w, b) = self.layers[i].params_mut();
            // Two optimizer slots per layer: weights then biases.
            optimizer.update(2 * i, w.as_mut_slice(), d_w.as_slice());
            optimizer.update(2 * i + 1, b, &d_b);
            if i > 0 {
                d_out = relu_backward(&pre_acts[i - 1], &d_x);
            }
        }
        loss
    }

    /// Trains for `config.epochs` passes and returns per-epoch stats.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the number of rows of `x` or
    /// the batch size is zero.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        x: &Mat,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
        config: &TrainConfig,
        rng: &mut R,
    ) -> Vec<EpochStats> {
        assert_eq!(x.rows(), labels.len(), "one label per sample required");
        assert!(config.batch_size > 0, "batch size must be positive");
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut history = Vec::with_capacity(config.epochs);

        for _ in 0..config.epochs {
            if config.shuffle {
                order.shuffle(rng);
            }
            let mut loss_sum = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(config.batch_size) {
                let bx = Mat::from_fn(chunk.len(), x.cols(), |i, j| x[(chunk[i], j)]);
                let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                loss_sum += self.train_batch(&bx, &by, optimizer);
                batches += 1;
            }
            history.push(EpochStats {
                loss: loss_sum / batches.max(1) as f64,
                accuracy: accuracy(&self.predict(x), labels),
            });
        }
        history
    }
}

/// Fraction of predictions matching the labels.
///
/// # Panics
///
/// Panics if the two slices have different lengths or are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(
        !predictions.is_empty(),
        "accuracy of empty set is undefined"
    );
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / predictions.len() as f64
}

/// Area under the ROC curve for binary scores via the rank-sum statistic.
///
/// `scores[i]` is the model's score for the positive class;
/// `labels[i]` is `true` for positives. Ties receive half credit.
/// Returns 0.5 when either class is absent.
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let mut pairs: Vec<(f64, bool)> = scores.iter().cloned().zip(labels.iter().cloned()).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank-sum with average ranks over ties.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i;
        while j + 1 < pairs.len() && pairs[j + 1].0 == pairs[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for p in &pairs[i..=j] {
            if p.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::SeedableRng;

    fn two_gaussians(n: usize, seed: u64) -> (Mat, Vec<usize>) {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(2 * n);
        let mut labels = Vec::with_capacity(2 * n);
        for _ in 0..n {
            rows.push(vec![
                rng.gen_range(-1.0..1.0) + 2.0,
                rng.gen_range(-1.0..1.0) + 2.0,
            ]);
            labels.push(0);
            rows.push(vec![
                rng.gen_range(-1.0..1.0) - 2.0,
                rng.gen_range(-1.0..1.0) - 2.0,
            ]);
            labels.push(1);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Mat::from_rows(&refs), labels)
    }

    #[test]
    fn learns_separable_gaussians() {
        let (x, y) = two_gaussians(100, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut model = Mlp::new(&[2, 16, 2], &mut rng);
        let mut opt = Adam::new(0.02);
        let history = model.fit(
            &x,
            &y,
            &mut opt,
            &TrainConfig {
                epochs: 40,
                batch_size: 32,
                shuffle: true,
            },
            &mut rng,
        );
        let final_acc = history.last().unwrap().accuracy;
        assert!(final_acc > 0.98, "accuracy={final_acc}");
        // Loss should broadly decrease.
        assert!(history.last().unwrap().loss < history[0].loss);
    }

    #[test]
    fn xor_requires_hidden_layer() {
        let x = Mat::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = [0usize, 1, 1, 0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut model = Mlp::new(&[2, 8, 2], &mut rng);
        let mut opt = Adam::new(0.05);
        model.fit(
            &x,
            &y,
            &mut opt,
            &TrainConfig {
                epochs: 600,
                batch_size: 4,
                shuffle: false,
            },
            &mut rng,
        );
        assert_eq!(model.predict(&x), vec![0, 1, 1, 0]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let model = Mlp::new(&[3, 5, 4], &mut rng);
        let x = Mat::from_rows(&[&[0.1, -0.2, 0.3]]);
        let p = model.predict_proba(&x);
        let sum: f64 = p.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(p.cols(), 4);
    }

    #[test]
    fn num_params_counts_weights_and_biases() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let model = Mlp::new(&[4, 8, 2], &mut rng);
        assert_eq!(model.num_layers(), 2);
        assert_eq!(model.num_params(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    fn auc_perfect_and_random() {
        let labels = [true, true, false, false];
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &labels), 1.0);
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &labels), 0.0);
        // All-tied scores → 0.5 by symmetry.
        assert_eq!(auc(&[0.5, 0.5, 0.5, 0.5], &labels), 0.5);
        // Degenerate single-class input.
        assert_eq!(auc(&[0.5, 0.6], &[true, true]), 0.5);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (x, y) = two_gaussians(30, 8);
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut model = Mlp::new(&[2, 8, 2], &mut rng);
            let mut opt = Adam::new(0.02);
            model.fit(&x, &y, &mut opt, &TrainConfig::default(), &mut rng);
            model.predict_proba(&x)[(0, 0)]
        };
        assert_eq!(run(42).to_bits(), run(42).to_bits());
    }
}
