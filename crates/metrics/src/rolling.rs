//! Incremental rolling-FID estimation.
//!
//! The serving session exposes a live FID estimate over the most recent
//! responses in every snapshot. Refitting a Gaussian from scratch over the
//! tail costs `O(window · d²)` per snapshot; at tight observer cadences
//! that refit dominates snapshot time. [`RollingFid`] maintains the
//! windowed first and second moments incrementally — `O(d)` + `O(d²)` per
//! pushed sample, independent of the window length — and only pays the
//! eigendecomposition when an estimate is actually requested.
//!
//! The estimator keeps a ring buffer of the raw feature vectors alongside
//! the running sum `Σx` and scatter `Σxxᵀ`, so evicting the oldest sample
//! is a subtraction rather than a refit. Floating-point drift from the
//! add/subtract cycle is bounded by rebuilding the moments exactly from
//! the buffer every [`REBUILD_INTERVAL`] pushes.

use std::collections::VecDeque;

use diffserve_linalg::Mat;

use crate::fid::{frechet_distance, GaussianStats};

/// Exact moment rebuilds happen every this many pushes, bounding the
/// accumulated round-off of the incremental add/subtract updates.
pub const REBUILD_INTERVAL: usize = 4096;

/// Windowed FID estimator with `O(d²)`-per-sample incremental updates.
///
/// Semantically equivalent to fitting [`GaussianStats`] over the last
/// `window` pushed feature vectors (sample covariance, `ridge · I` added
/// to the diagonal) and taking the Fréchet distance to the reference —
/// but without re-scanning the window on every estimate.
///
/// # Examples
///
/// ```
/// use diffserve_linalg::Mat;
/// use diffserve_metrics::{GaussianStats, RollingFid};
///
/// let reference = GaussianStats::from_moments(vec![0.0, 0.0], Mat::identity(2));
/// let mut rolling = RollingFid::new(reference, 4, 1e-3);
/// assert!(rolling.estimate().is_nan()); // too few samples
/// for i in 0..8 {
///     rolling.push(&[i as f64, -(i as f64)]);
/// }
/// assert_eq!(rolling.len(), 4); // only the window is retained
/// assert!(rolling.estimate().is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct RollingFid {
    reference: GaussianStats,
    window: usize,
    ridge: f64,
    buf: VecDeque<Vec<f64>>,
    /// Running `Σx` over the buffer.
    sum: Vec<f64>,
    /// Running `Σxxᵀ` over the buffer.
    scatter: Mat,
    pushes_since_rebuild: usize,
}

impl RollingFid {
    /// Creates an estimator comparing the last `window` samples against
    /// `reference`, regularizing the windowed covariance with `ridge · I`.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` (no covariance can be fit) or the reference
    /// has zero dimension.
    pub fn new(reference: GaussianStats, window: usize, ridge: f64) -> Self {
        assert!(window >= 2, "rolling FID needs a window of at least 2");
        let d = reference.dim();
        assert!(d > 0, "reference must have at least one feature dimension");
        RollingFid {
            reference,
            window,
            ridge,
            buf: VecDeque::with_capacity(window + 1),
            sum: vec![0.0; d],
            scatter: Mat::zeros(d, d),
            pushes_since_rebuild: 0,
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The window length this estimator was built with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Pushes one feature vector, evicting the oldest once the window is
    /// full.
    ///
    /// # Panics
    ///
    /// Panics if `features` does not match the reference dimensionality.
    pub fn push(&mut self, features: &[f64]) {
        assert_eq!(
            features.len(),
            self.reference.dim(),
            "feature dimension mismatch"
        );
        self.accumulate(features, 1.0);
        self.buf.push_back(features.to_vec());
        if self.buf.len() > self.window {
            let old = self.buf.pop_front().expect("buffer just exceeded window");
            self.accumulate(&old, -1.0);
        }
        self.pushes_since_rebuild += 1;
        if self.pushes_since_rebuild >= REBUILD_INTERVAL {
            self.rebuild();
        }
    }

    /// FID of the current window against the reference; `NaN` with fewer
    /// than two samples (matching [`GaussianStats::fit`]'s requirement) or
    /// on numerical failure.
    pub fn estimate(&self) -> f64 {
        let n = self.buf.len();
        if n < 2 {
            return f64::NAN;
        }
        let d = self.sum.len();
        let inv_n = 1.0 / n as f64;
        let mean: Vec<f64> = self.sum.iter().map(|s| s * inv_n).collect();
        // Sample covariance from the moments: (Σxxᵀ − n·μμᵀ) / (n − 1).
        let denom = (n - 1) as f64;
        let mut cov = Mat::zeros(d, d);
        for a in 0..d {
            for b in a..d {
                let c = (self.scatter[(a, b)] - n as f64 * mean[a] * mean[b]) / denom;
                cov[(a, b)] = c;
                cov[(b, a)] = c;
            }
            cov[(a, a)] += self.ridge;
        }
        let stats = GaussianStats::from_moments(mean, cov);
        frechet_distance(&stats, &self.reference).unwrap_or(f64::NAN)
    }

    /// Adds (`sign = 1.0`) or removes (`sign = -1.0`) one sample's
    /// contribution to the running moments. Only the upper triangle of the
    /// scatter is maintained; [`Self::estimate`] mirrors it.
    fn accumulate(&mut self, x: &[f64], sign: f64) {
        for (s, &v) in self.sum.iter_mut().zip(x) {
            *s += sign * v;
        }
        for (a, &xa) in x.iter().enumerate() {
            for (b, &xb) in x.iter().enumerate().skip(a) {
                self.scatter[(a, b)] += sign * xa * xb;
            }
        }
    }

    /// Recomputes the moments exactly from the buffered samples.
    fn rebuild(&mut self) {
        self.sum.iter_mut().for_each(|s| *s = 0.0);
        self.scatter = Mat::zeros(self.sum.len(), self.sum.len());
        let samples: Vec<Vec<f64>> = self.buf.iter().cloned().collect();
        for x in &samples {
            self.accumulate(x, 1.0);
        }
        self.pushes_since_rebuild = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fid::FidError;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn reference_2d() -> GaussianStats {
        GaussianStats::from_moments(vec![0.2, -0.4], Mat::from_rows(&[&[1.5, 0.2], &[0.2, 0.9]]))
    }

    /// The batch computation the incremental path must agree with: fit a
    /// Gaussian over exactly the window tail and take the distance.
    fn batch_estimate(
        samples: &[Vec<f64>],
        window: usize,
        ridge: f64,
        reference: &GaussianStats,
    ) -> f64 {
        let tail = &samples[samples.len().saturating_sub(window)..];
        if tail.len() < 2 {
            return f64::NAN;
        }
        let rows: Vec<&[f64]> = tail.iter().map(|v| v.as_slice()).collect();
        match GaussianStats::fit(&Mat::from_rows(&rows), ridge) {
            Ok(g) => frechet_distance(&g, reference).unwrap_or(f64::NAN),
            Err(FidError::TooFewSamples { .. }) => f64::NAN,
            Err(_) => f64::NAN,
        }
    }

    #[test]
    fn nan_below_two_samples() {
        let mut r = RollingFid::new(reference_2d(), 8, 1e-3);
        assert!(r.estimate().is_nan());
        r.push(&[0.1, 0.2]);
        assert!(r.estimate().is_nan());
        r.push(&[0.3, -0.1]);
        assert!(r.estimate().is_finite());
    }

    #[test]
    fn window_is_enforced() {
        let mut r = RollingFid::new(reference_2d(), 3, 1e-3);
        for i in 0..10 {
            r.push(&[i as f64, 1.0]);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.window(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn matches_batch_fit_through_evictions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let reference = reference_2d();
        let mut rolling = RollingFid::new(reference.clone(), 16, 1e-3);
        let mut seen: Vec<Vec<f64>> = Vec::new();
        for _ in 0..200 {
            let x = vec![rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)];
            rolling.push(&x);
            seen.push(x);
            let inc = rolling.estimate();
            let batch = batch_estimate(&seen, 16, 1e-3, &reference);
            if batch.is_nan() {
                assert!(inc.is_nan());
            } else {
                assert!(
                    (inc - batch).abs() < 1e-8,
                    "incremental {inc} vs batch {batch} after {} pushes",
                    seen.len()
                );
            }
        }
    }

    #[test]
    fn rebuild_keeps_the_estimate_exact() {
        // Push past the rebuild interval; the periodic exact recompute
        // must leave the estimate agreeing with the batch fit.
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let reference = reference_2d();
        let mut rolling = RollingFid::new(reference.clone(), 8, 1e-3);
        let mut seen: Vec<Vec<f64>> = Vec::new();
        for _ in 0..(REBUILD_INTERVAL + 32) {
            let x = vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
            rolling.push(&x);
            seen.push(x);
        }
        let inc = rolling.estimate();
        let batch = batch_estimate(&seen, 8, 1e-3, &reference);
        assert!((inc - batch).abs() < 1e-8, "{inc} vs {batch}");
    }

    #[test]
    #[should_panic(expected = "window of at least 2")]
    fn window_of_one_rejected() {
        let _ = RollingFid::new(reference_2d(), 1, 1e-3);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn dimension_mismatch_rejected() {
        let mut r = RollingFid::new(reference_2d(), 4, 1e-3);
        r.push(&[1.0, 2.0, 3.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Incremental and batch estimates agree for random streams,
        /// window sizes, and ridges — including streams shorter than the
        /// window and streams that wrap it several times.
        #[test]
        fn incremental_matches_batch(
            seed in 0u64..1000,
            window in 2usize..24,
            n in 0usize..80,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let reference = reference_2d();
            let mut rolling = RollingFid::new(reference.clone(), window, 1e-3);
            let mut seen: Vec<Vec<f64>> = Vec::new();
            for _ in 0..n {
                let x = vec![rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)];
                rolling.push(&x);
                seen.push(x);
            }
            let inc = rolling.estimate();
            let batch = batch_estimate(&seen, window, 1e-3, &reference);
            if batch.is_nan() {
                prop_assert!(inc.is_nan());
            } else {
                prop_assert!((inc - batch).abs() < 1e-7, "{} vs {}", inc, batch);
            }
        }
    }
}
