//! Windowed time series for experiment plots.

use diffserve_simkit::time::{SimDuration, SimTime};

/// Accumulates timestamped scalar samples and aggregates them per window.
///
/// Used for the paper's time-series panels (demand, FID, threshold over
/// time — Figs. 5 and 8).
///
/// # Examples
///
/// ```
/// use diffserve_metrics::WindowedSeries;
/// use diffserve_simkit::time::{SimDuration, SimTime};
///
/// let mut s = WindowedSeries::new(SimDuration::from_secs(10));
/// s.push(SimTime::from_secs(1), 2.0);
/// s.push(SimTime::from_secs(2), 4.0);
/// s.push(SimTime::from_secs(15), 8.0);
/// let means = s.window_means();
/// assert_eq!(means.len(), 2);
/// assert_eq!(means[0].1, 3.0);
/// assert_eq!(means[1].1, 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedSeries {
    window: SimDuration,
    samples: Vec<(SimTime, f64)>,
}

impl WindowedSeries {
    /// Creates a series with the given aggregation window.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        WindowedSeries {
            window,
            samples: Vec::new(),
        }
    }

    /// Adds one sample. NaN samples are ignored.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if value.is_nan() {
            return;
        }
        self.samples.push((t, value));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The aggregation window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Raw samples in insertion order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    fn fold_windows<A: Clone>(
        &self,
        init: A,
        mut fold: impl FnMut(&mut A, f64),
    ) -> Vec<(SimTime, A)> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        let end = self
            .samples
            .iter()
            .map(|(t, _)| *t)
            .max()
            .expect("non-empty samples");
        let n = (end.as_micros() / self.window.as_micros() + 1) as usize;
        let mut accs = vec![init; n];
        for &(t, v) in &self.samples {
            let idx = (t.as_micros() / self.window.as_micros()) as usize;
            fold(&mut accs[idx], v);
        }
        accs.into_iter()
            .enumerate()
            .map(|(i, a)| (SimTime::ZERO + self.window * i as u64, a))
            .collect()
    }

    /// Per-window means (empty windows report 0).
    pub fn window_means(&self) -> Vec<(SimTime, f64)> {
        self.fold_windows((0.0f64, 0u64), |acc, v| {
            acc.0 += v;
            acc.1 += 1;
        })
        .into_iter()
        .map(|(t, (sum, n))| (t, if n == 0 { 0.0 } else { sum / n as f64 }))
        .collect()
    }

    /// Per-window sums.
    pub fn window_sums(&self) -> Vec<(SimTime, f64)> {
        self.fold_windows(0.0f64, |acc, v| *acc += v)
    }

    /// Per-window sample counts.
    pub fn window_counts(&self) -> Vec<(SimTime, u64)> {
        self.fold_windows(0u64, |acc, _| *acc += 1)
    }

    /// Per-window rates: count divided by window length in seconds
    /// (e.g. arrivals → QPS).
    pub fn window_rates(&self) -> Vec<(SimTime, f64)> {
        let secs = self.window.as_secs_f64();
        self.window_counts()
            .into_iter()
            .map(|(t, c)| (t, c as f64 / secs))
            .collect()
    }

    /// Mean over all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn means_and_sums_per_window() {
        let mut s = WindowedSeries::new(SimDuration::from_secs(5));
        s.push(secs(0), 1.0);
        s.push(secs(4), 3.0);
        s.push(secs(5), 10.0);
        assert_eq!(s.window_means(), vec![(secs(0), 2.0), (secs(5), 10.0)]);
        assert_eq!(s.window_sums(), vec![(secs(0), 4.0), (secs(5), 10.0)]);
        assert_eq!(s.window_counts(), vec![(secs(0), 2), (secs(5), 1)]);
    }

    #[test]
    fn rates_divide_by_window() {
        let mut s = WindowedSeries::new(SimDuration::from_secs(2));
        for i in 0..10 {
            s.push(SimTime::from_millis(i * 100), 1.0);
        }
        let rates = s.window_rates();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].1, 5.0); // 10 samples over 2s
    }

    #[test]
    fn empty_and_nan_handling() {
        let mut s = WindowedSeries::new(SimDuration::from_secs(1));
        assert!(s.is_empty());
        assert!(s.window_means().is_empty());
        assert_eq!(s.mean(), 0.0);
        s.push(secs(0), f64::NAN);
        assert!(s.is_empty());
        s.push(secs(0), 2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn gap_windows_report_zero_mean() {
        let mut s = WindowedSeries::new(SimDuration::from_secs(1));
        s.push(secs(0), 5.0);
        s.push(secs(2), 7.0);
        let means = s.window_means();
        assert_eq!(means.len(), 3);
        assert_eq!(means[1].1, 0.0);
    }
}
