//! SLO accounting.
//!
//! The paper's second system metric is the *SLO violation ratio*: "the
//! proportion of queries that fail to meet the SLO latency requirement or
//! are preemptively dropped by the system when they are predicted to miss
//! the deadline" (§4.1). [`SloTracker`] implements exactly that accounting.

use diffserve_simkit::time::{SimDuration, SimTime};

/// Outcome of one query for SLO purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Completed within its deadline.
    OnTime,
    /// Completed after its deadline.
    Late,
    /// Preemptively dropped (predicted to miss, or shed under overload).
    Dropped,
}

impl QueryOutcome {
    /// Whether this outcome counts as an SLO violation.
    pub fn is_violation(self) -> bool {
        !matches!(self, QueryOutcome::OnTime)
    }
}

/// Records per-query outcomes and reports violation statistics.
///
/// # Examples
///
/// ```
/// use diffserve_metrics::{QueryOutcome, SloTracker};
/// use diffserve_simkit::time::{SimDuration, SimTime};
///
/// let mut slo = SloTracker::new(SimDuration::from_secs(5));
/// let arrival = SimTime::ZERO;
/// slo.record_completion(arrival, SimTime::from_secs(2)); // on time
/// slo.record_completion(arrival, SimTime::from_secs(9)); // late
/// slo.record_drop(arrival, SimTime::from_secs(1));
/// assert_eq!(slo.total(), 3);
/// assert!((slo.violation_ratio() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SloTracker {
    slo: SimDuration,
    events: Vec<(SimTime, QueryOutcome)>,
    on_time: u64,
    late: u64,
    dropped: u64,
    latency_sum: f64,
    latency_count: u64,
}

impl SloTracker {
    /// Creates a tracker for the given latency SLO.
    pub fn new(slo: SimDuration) -> Self {
        SloTracker {
            slo,
            events: Vec::new(),
            on_time: 0,
            late: 0,
            dropped: 0,
            latency_sum: 0.0,
            latency_count: 0,
        }
    }

    /// The configured SLO.
    pub fn slo(&self) -> SimDuration {
        self.slo
    }

    /// Records a completed query; classifies it against the SLO.
    /// Returns the outcome.
    pub fn record_completion(&mut self, arrival: SimTime, finish: SimTime) -> QueryOutcome {
        let latency = finish.saturating_since(arrival);
        self.latency_sum += latency.as_secs_f64();
        self.latency_count += 1;
        let outcome = if latency <= self.slo {
            self.on_time += 1;
            QueryOutcome::OnTime
        } else {
            self.late += 1;
            QueryOutcome::Late
        };
        self.events.push((finish, outcome));
        outcome
    }

    /// Records a preemptive drop at time `at`.
    pub fn record_drop(&mut self, _arrival: SimTime, at: SimTime) {
        self.dropped += 1;
        self.events.push((at, QueryOutcome::Dropped));
    }

    /// Total queries accounted (completions + drops).
    pub fn total(&self) -> u64 {
        self.on_time + self.late + self.dropped
    }

    /// Queries that met the SLO.
    pub fn on_time(&self) -> u64 {
        self.on_time
    }

    /// Completed-but-late queries.
    pub fn late(&self) -> u64 {
        self.late
    }

    /// Dropped queries.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Overall violation ratio (0.0 when nothing has been recorded).
    pub fn violation_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.late + self.dropped) as f64 / total as f64
        }
    }

    /// Mean completion latency in seconds (drops excluded).
    pub fn mean_latency(&self) -> f64 {
        if self.latency_count == 0 {
            0.0
        } else {
            self.latency_sum / self.latency_count as f64
        }
    }

    /// Violation ratio per time window, for time-series plots (paper
    /// Figs. 5 and 8). Windows with no events report 0.
    pub fn windowed_violation_ratio(&self, window: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!window.is_zero(), "window must be positive");
        if self.events.is_empty() {
            return Vec::new();
        }
        let end = self
            .events
            .iter()
            .map(|(t, _)| *t)
            .max()
            .expect("non-empty events");
        let num_windows = end.as_micros() / window.as_micros() + 1;
        let mut totals = vec![0u64; num_windows as usize];
        let mut violations = vec![0u64; num_windows as usize];
        for &(t, outcome) in &self.events {
            let idx = (t.as_micros() / window.as_micros()) as usize;
            totals[idx] += 1;
            if outcome.is_violation() {
                violations[idx] += 1;
            }
        }
        (0..num_windows as usize)
            .map(|i| {
                let start = SimTime::ZERO + window * i as u64;
                let ratio = if totals[i] == 0 {
                    0.0
                } else {
                    violations[i] as f64 / totals[i] as f64
                };
                (start, ratio)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn classifies_on_time_and_late() {
        let mut s = SloTracker::new(SimDuration::from_secs(5));
        assert_eq!(s.record_completion(t(0.0), t(5.0)), QueryOutcome::OnTime);
        assert_eq!(s.record_completion(t(0.0), t(5.1)), QueryOutcome::Late);
        assert_eq!(s.on_time(), 1);
        assert_eq!(s.late(), 1);
    }

    #[test]
    fn drops_count_as_violations() {
        let mut s = SloTracker::new(SimDuration::from_secs(5));
        s.record_drop(t(0.0), t(0.5));
        s.record_completion(t(0.0), t(1.0));
        assert_eq!(s.dropped(), 1);
        assert!((s.violation_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let s = SloTracker::new(SimDuration::from_secs(1));
        assert_eq!(s.violation_ratio(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.total(), 0);
        assert!(s
            .windowed_violation_ratio(SimDuration::from_secs(1))
            .is_empty());
    }

    #[test]
    fn mean_latency_excludes_drops() {
        let mut s = SloTracker::new(SimDuration::from_secs(10));
        s.record_completion(t(0.0), t(2.0));
        s.record_completion(t(1.0), t(5.0));
        s.record_drop(t(0.0), t(0.1));
        assert!((s.mean_latency() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn windowed_ratio_buckets_by_completion_time() {
        let mut s = SloTracker::new(SimDuration::from_secs(1));
        // Window 0: one on-time.
        s.record_completion(t(0.0), t(0.5));
        // Window 1: one late (latency 1.4 > 1).
        s.record_completion(t(0.1), t(1.5));
        // Window 3: one drop.
        s.record_drop(t(3.0), t(3.2));
        let w = s.windowed_violation_ratio(SimDuration::from_secs(1));
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].1, 0.0);
        assert_eq!(w[1].1, 1.0);
        assert_eq!(w[2].1, 0.0); // empty window
        assert_eq!(w[3].1, 1.0);
    }

    #[test]
    fn outcome_violation_flags() {
        assert!(!QueryOutcome::OnTime.is_violation());
        assert!(QueryOutcome::Late.is_violation());
        assert!(QueryOutcome::Dropped.is_violation());
    }
}
