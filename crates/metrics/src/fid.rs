//! Fréchet Inception Distance over feature sets.
//!
//! The paper scores system response quality with FID (§2.1, §4.1): fit a
//! Gaussian to the features of generated images and to the features of real
//! images, then compute the Fréchet distance
//!
//! ```text
//! FID = ‖μ₁ − μ₂‖² + tr(Σ₁ + Σ₂ − 2·(Σ₁Σ₂)^{1/2})
//! ```
//!
//! In the original pipeline the features come from InceptionV3; in this
//! reproduction they come from the synthetic image substrate
//! (`diffserve-imagegen`), and the distance itself is computed exactly, via
//! the symmetric reformulation `tr((Σ₁Σ₂)^{1/2}) = Σᵢ √λᵢ(S Σ₂ S)` with
//! `S = Σ₁^{1/2}`.

use diffserve_linalg::{sqrtm_psd, sym_eigen, DecompError, Mat};

/// Errors from FID computation.
#[derive(Debug, Clone, PartialEq)]
pub enum FidError {
    /// Need at least two samples to fit a covariance.
    TooFewSamples {
        /// Number of samples provided.
        got: usize,
    },
    /// Feature dimensionality differs between the two sets.
    DimensionMismatch {
        /// Dimension of the first set.
        a: usize,
        /// Dimension of the second set.
        b: usize,
    },
    /// An eigendecomposition failed (numerically hostile covariance).
    Numerical(DecompError),
}

impl std::fmt::Display for FidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FidError::TooFewSamples { got } => {
                write!(f, "need at least 2 samples to fit a gaussian, got {got}")
            }
            FidError::DimensionMismatch { a, b } => {
                write!(f, "feature dimensions differ: {a} vs {b}")
            }
            FidError::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for FidError {}

impl From<DecompError> for FidError {
    fn from(e: DecompError) -> Self {
        FidError::Numerical(e)
    }
}

/// Gaussian summary (mean + covariance) of a feature set.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianStats {
    mean: Vec<f64>,
    cov: Mat,
}

impl GaussianStats {
    /// Fits a Gaussian to a data matrix (rows = samples, cols = features),
    /// adding `ridge · I` to the covariance for numerical stability.
    ///
    /// Standard FID implementations regularize exactly this way when sample
    /// counts per window are small.
    ///
    /// # Errors
    ///
    /// Returns [`FidError::TooFewSamples`] with fewer than two rows.
    pub fn fit(features: &Mat, ridge: f64) -> Result<Self, FidError> {
        if features.rows() < 2 {
            return Err(FidError::TooFewSamples {
                got: features.rows(),
            });
        }
        let mean = features.column_means();
        let mut cov = features.covariance();
        for i in 0..cov.rows() {
            cov[(i, i)] += ridge;
        }
        Ok(GaussianStats { mean, cov })
    }

    /// Builds stats directly from a known mean and covariance.
    ///
    /// # Panics
    ///
    /// Panics if the covariance is not square or its size differs from the
    /// mean length.
    pub fn from_moments(mean: Vec<f64>, cov: Mat) -> Self {
        assert!(cov.is_square(), "covariance must be square");
        assert_eq!(mean.len(), cov.rows(), "mean/covariance size mismatch");
        GaussianStats { mean, cov }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The covariance matrix.
    pub fn cov(&self) -> &Mat {
        &self.cov
    }
}

/// Exact Fréchet distance between two Gaussians.
///
/// # Errors
///
/// Returns [`FidError::DimensionMismatch`] or a numerical failure from the
/// eigendecomposition.
pub fn frechet_distance(a: &GaussianStats, b: &GaussianStats) -> Result<f64, FidError> {
    if a.dim() != b.dim() {
        return Err(FidError::DimensionMismatch {
            a: a.dim(),
            b: b.dim(),
        });
    }
    let mean_term: f64 = a
        .mean
        .iter()
        .zip(&b.mean)
        .map(|(x, y)| (x - y) * (x - y))
        .sum();

    // tr((Σa Σb)^{1/2}) through the symmetric product S Σb S, S = Σa^{1/2}.
    let s = sqrtm_psd(&a.cov)?;
    let mut inner = s.matmul(&b.cov).matmul(&s);
    inner.symmetrize();
    let eig = sym_eigen(&inner)?;
    let tr_sqrt: f64 = eig.values.iter().map(|&l| l.max(0.0).sqrt()).sum();

    let fid = mean_term + a.cov.trace() + b.cov.trace() - 2.0 * tr_sqrt;
    // Clamp tiny negative round-off; FID is non-negative by construction.
    Ok(fid.max(0.0))
}

/// Convenience: fit Gaussians to two feature matrices and return their FID.
///
/// # Errors
///
/// Propagates fitting and numerical errors.
pub fn fid_score(generated: &Mat, reference: &Mat, ridge: f64) -> Result<f64, FidError> {
    let a = GaussianStats::fit(generated, ridge)?;
    let b = GaussianStats::fit(reference, ridge)?;
    frechet_distance(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn gaussian_samples(n: usize, mean: &[f64], scale: f64, seed: u64) -> Mat {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let d = mean.len();
        Mat::from_fn(n, d, |_, j| {
            // Sum of 12 uniforms ≈ normal (Irwin–Hall), good enough here.
            let z: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0;
            mean[j] + scale * z
        })
    }

    #[test]
    fn identical_gaussians_have_zero_fid() {
        let a = GaussianStats::from_moments(vec![1.0, -2.0], Mat::identity(2));
        let b = a.clone();
        let d = frechet_distance(&a, &b).unwrap();
        assert!(d.abs() < 1e-9, "d={d}");
    }

    #[test]
    fn mean_shift_equals_squared_distance() {
        // Equal covariances: FID reduces to ‖Δμ‖².
        let a = GaussianStats::from_moments(vec![0.0, 0.0], Mat::identity(2));
        let b = GaussianStats::from_moments(vec![3.0, 4.0], Mat::identity(2));
        let d = frechet_distance(&a, &b).unwrap();
        assert!((d - 25.0).abs() < 1e-9, "d={d}");
    }

    #[test]
    fn diagonal_covariance_closed_form() {
        // For diagonal Σ, FID = Σ(√σ1 − √σ2)² + ‖Δμ‖².
        let a = GaussianStats::from_moments(vec![0.0], Mat::from_diag(&[4.0]));
        let b = GaussianStats::from_moments(vec![0.0], Mat::from_diag(&[1.0]));
        let d = frechet_distance(&a, &b).unwrap();
        assert!((d - 1.0).abs() < 1e-9, "d={d}"); // (2-1)^2
    }

    #[test]
    fn symmetric_in_arguments() {
        let a = GaussianStats::from_moments(
            vec![0.5, -1.0],
            Mat::from_rows(&[&[2.0, 0.3], &[0.3, 1.0]]),
        );
        let b = GaussianStats::from_moments(
            vec![-0.5, 0.2],
            Mat::from_rows(&[&[1.5, -0.2], &[-0.2, 0.8]]),
        );
        let d1 = frechet_distance(&a, &b).unwrap();
        let d2 = frechet_distance(&b, &a).unwrap();
        assert!((d1 - d2).abs() < 1e-8);
        assert!(d1 > 0.0);
    }

    #[test]
    fn sampled_fid_close_to_population() {
        let x = gaussian_samples(4000, &[0.0, 0.0, 0.0], 1.0, 1);
        let y = gaussian_samples(4000, &[1.0, 0.0, 0.0], 1.0, 2);
        let d = fid_score(&x, &y, 1e-6).unwrap();
        // Population FID = 1.0 (pure mean shift); sampling noise allowed.
        assert!((d - 1.0).abs() < 0.15, "d={d}");
    }

    #[test]
    fn same_distribution_fid_near_zero() {
        let x = gaussian_samples(4000, &[0.0, 1.0], 1.0, 3);
        let y = gaussian_samples(4000, &[0.0, 1.0], 1.0, 4);
        let d = fid_score(&x, &y, 1e-6).unwrap();
        assert!(d < 0.05, "d={d}");
    }

    #[test]
    fn too_few_samples_rejected() {
        let x = Mat::from_rows(&[&[1.0, 2.0]]);
        assert!(matches!(
            GaussianStats::fit(&x, 0.0),
            Err(FidError::TooFewSamples { got: 1 })
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = GaussianStats::from_moments(vec![0.0], Mat::identity(1));
        let b = GaussianStats::from_moments(vec![0.0, 0.0], Mat::identity(2));
        assert!(matches!(
            frechet_distance(&a, &b),
            Err(FidError::DimensionMismatch { a: 1, b: 2 })
        ));
    }

    #[test]
    fn ridge_stabilizes_degenerate_covariance() {
        // Perfectly collinear samples make the covariance singular; ridge
        // keeps the computation finite.
        let x = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let y = Mat::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let d = fid_score(&x, &y, 1e-4).unwrap();
        assert!(d.is_finite());
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            FidError::TooFewSamples { got: 0 },
            FidError::DimensionMismatch { a: 1, b: 2 },
            FidError::Numerical(DecompError::NoConvergence),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn fid_nonnegative_and_symmetric(seed_a in 0u64..100, seed_b in 100u64..200) {
            let x = gaussian_samples(64, &[0.3, -0.5], 1.2, seed_a);
            let y = gaussian_samples(64, &[-0.1, 0.4], 0.8, seed_b);
            let d1 = fid_score(&x, &y, 1e-6).unwrap();
            let d2 = fid_score(&y, &x, 1e-6).unwrap();
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-6);
        }
    }
}
