//! # diffserve-metrics
//!
//! Evaluation metrics for the DiffServe reproduction.
//!
//! The paper judges a serving system on two axes (§4.1):
//!
//! 1. **Response quality** — Fréchet Inception Distance between the features
//!    of the system's generated images and a reference set of real images.
//!    [`fid`] computes the distance exactly over the synthetic feature
//!    vectors produced by `diffserve-imagegen`.
//! 2. **SLO violation ratio** — the fraction of queries that finish late or
//!    are preemptively dropped. [`slo`] implements that accounting,
//!    including the windowed time series used in Figs. 5 and 8.
//!
//! [`series`] provides the generic windowed aggregation used for demand and
//! threshold plots, and [`rolling`] maintains the live windowed FID estimate
//! incrementally for per-snapshot taps.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fid;
pub mod rolling;
pub mod series;
pub mod slo;

pub use fid::{fid_score, frechet_distance, FidError, GaussianStats};
pub use rolling::RollingFid;
pub use series::WindowedSeries;
pub use slo::{QueryOutcome, SloTracker};
