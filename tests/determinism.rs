//! Whole-pipeline determinism: every stage of the reproduction is seeded,
//! so identical inputs must produce bit-identical outputs.

use diffserve::prelude::*;
use diffserve_simkit::time::SimDuration;

fn prepare(seed: u64) -> CascadeRuntime {
    CascadeRuntime::prepare(
        cascade1(FeatureSpec::default()),
        1200,
        seed,
        DiscriminatorConfig {
            train_prompts: 400,
            epochs: 8,
            ..Default::default()
        },
    )
}

#[test]
fn runtime_preparation_is_deterministic() {
    let a = prepare(42);
    let b = prepare(42);
    let p = &a.dataset.prompts()[100];
    assert_eq!(a.dataset.prompts(), b.dataset.prompts());
    let img_a = a.spec.light.generate(p);
    let img_b = b.spec.light.generate(p);
    assert_eq!(img_a, img_b);
    assert_eq!(
        a.discriminator.confidence(&img_a.features).to_bits(),
        b.discriminator.confidence(&img_b.features).to_bits()
    );
    assert_eq!(
        a.deferral.fraction_deferred(0.37),
        b.deferral.fraction_deferred(0.37)
    );
}

#[test]
fn different_seeds_differ() {
    let a = prepare(42);
    let b = prepare(43);
    assert_ne!(
        a.dataset.prompts()[0].difficulty,
        b.dataset.prompts()[0].difficulty
    );
}

#[test]
fn full_simulation_replays_identically() {
    let runtime = prepare(7);
    let config = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };
    let trace = Trace::constant(6.0, SimDuration::from_secs(45)).unwrap();
    let settings = RunSettings::new(Policy::DiffServe, 6.0);
    let a = run_trace(&runtime, &config, &settings, &trace);
    let b = run_trace(&runtime, &config, &settings, &trace);
    assert_eq!(a.total_queries, b.total_queries);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.fid.to_bits(), b.fid.to_bits());
    assert_eq!(a.threshold_series, b.threshold_series);
    assert_eq!(a.violation_series, b.violation_series);
}

#[test]
fn arrival_streams_are_seed_stable() {
    let trace = Trace::constant(20.0, SimDuration::from_secs(30)).unwrap();
    let a = poisson_arrivals(&trace, &mut seeded_rng(11));
    let b = poisson_arrivals(&trace, &mut seeded_rng(11));
    let c = poisson_arrivals(&trace, &mut seeded_rng(12));
    assert_eq!(a, b);
    assert_ne!(a, c);
}
