//! The degradation-aware fault engine end to end: partial degradation
//! (brownouts) slows service instead of fail-stopping it, the controller
//! solves against *effective* capacity rather than nameplate, seeded
//! load-correlated hazards fire into a recorded incident log, and replaying
//! that log reproduces the original run — bit-exactly on the discrete-event
//! simulator.

use diffserve::prelude::*;
use diffserve_simkit::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::sync::OnceLock;

fn runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            1500,
            2024,
            DiscriminatorConfig {
                train_prompts: 500,
                epochs: 10,
                ..Default::default()
            },
        )
    })
}

fn system() -> SystemConfig {
    SystemConfig {
        num_workers: 8,
        ..Default::default()
    }
}

fn flat(qps: f64, secs: u64) -> Trace {
    Trace::constant(qps, SimDuration::from_secs(secs)).unwrap()
}

/// Bitwise report equality: every aggregate and every time series. Two runs
/// that pass this are indistinguishable to any downstream analysis.
fn assert_reports_bit_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.total_queries, b.total_queries, "{what}: total");
    assert_eq!(a.completed, b.completed, "{what}: completed");
    assert_eq!(a.dropped, b.dropped, "{what}: dropped");
    assert_eq!(a.late, b.late, "{what}: late");
    assert_eq!(
        a.violation_ratio.to_bits(),
        b.violation_ratio.to_bits(),
        "{what}: violation ratio"
    );
    assert_eq!(
        a.mean_latency.to_bits(),
        b.mean_latency.to_bits(),
        "{what}: mean latency"
    );
    assert_eq!(a.fid.to_bits(), b.fid.to_bits(), "{what}: fid");
    assert_eq!(
        a.heavy_fraction.to_bits(),
        b.heavy_fraction.to_bits(),
        "{what}: heavy fraction"
    );
    assert_eq!(
        a.mean_heavy_latency.to_bits(),
        b.mean_heavy_latency.to_bits(),
        "{what}: mean heavy latency"
    );
    assert_eq!(
        a.gpu_time_per_query.to_bits(),
        b.gpu_time_per_query.to_bits(),
        "{what}: gpu time per query"
    );
    assert_eq!(a.resumed_queries, b.resumed_queries, "{what}: resumed");
    assert_eq!(
        a.mean_reused_steps.to_bits(),
        b.mean_reused_steps.to_bits(),
        "{what}: mean reused steps"
    );
    assert_eq!(a.fid_series, b.fid_series, "{what}: fid series");
    assert_eq!(
        a.violation_series, b.violation_series,
        "{what}: violation series"
    );
    assert_eq!(a.demand_series, b.demand_series, "{what}: demand series");
    assert_eq!(
        a.threshold_series, b.threshold_series,
        "{what}: threshold series"
    );
    assert_eq!(a.incident_log, b.incident_log, "{what}: incident log");
}

/// A seeded hazard run fires load-correlated faults into the incident log,
/// and replaying the log through a fresh session reproduces the original
/// report bit-exactly — a weird run becomes a regression test.
#[test]
fn hazard_incidents_record_and_replay_bit_exactly_on_sim() {
    let sys = system();
    let settings = RunSettings::new(Policy::DiffServe, 8.0);
    let scenario = Scenario::new("hazardous", flat(7.0, 80)).with_hazard(Hazard {
        seed: 7,
        fail_rate: 0.01,
        degrade_rate: 0.05,
        recover_rate: 0.05,
        restore_rate: 0.03,
        load_coupling: 6.0,
        ..Hazard::default()
    });
    let original = run_scenario(runtime(), &sys, &settings, &scenario);
    assert!(
        !original.incident_log.is_empty(),
        "seeded hazards must fire at these rates"
    );
    // The hazard drew at least one partial degradation, not only fail-stops.
    assert!(
        original
            .incident_log
            .iter()
            .any(|i| matches!(i.event, ScenarioEvent::Capacity(CapacityEvent::Degrade(..)))),
        "no degradation drawn: {:?}",
        original.incident_log
    );

    let replayed = scenario.replay(&original.incident_log);
    assert!(replayed.hazard().is_none());
    let replay = run_scenario(runtime(), &sys, &settings, &replayed);
    assert_reports_bit_identical(&original, &replay, "hazard replay");
}

/// Incident replay also round-trips for purely scheduled fault timelines
/// (the log then is the timeline), including degradations.
#[test]
fn scheduled_brownout_records_and_replays_bit_exactly() {
    let sys = system();
    let settings = RunSettings::new(Policy::DiffServe, 8.0);
    let scenario = Scenario::new("brownout", flat(6.0, 60))
        .worker_degrade(SimTime::from_secs(15), 3, 2.5)
        .worker_fail(SimTime::from_secs(25), 1)
        .worker_recover(SimTime::from_secs(40), 1)
        .worker_restore(SimTime::from_secs(45), 3);
    let original = run_scenario(runtime(), &sys, &settings, &scenario);
    assert_eq!(
        original.incident_log.len(),
        4,
        "every scheduled perturbation must be logged: {:?}",
        original.incident_log
    );
    let replay = run_scenario(
        runtime(),
        &sys,
        &settings,
        &scenario.replay(&original.incident_log),
    );
    assert_reports_bit_identical(&original, &replay, "scheduled replay");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for any hazard seed and rate mix, the recorded incident
    /// log replays the run bit-exactly on the simulator.
    #[test]
    fn incident_replay_is_bit_exact_under_seeded_hazards(
        seed in 0usize..1000,
        fail_rate in 0.0f64..0.02,
        degrade_rate in 0.01f64..0.08,
        coupling in 0.0f64..8.0,
    ) {
        let sys = system();
        let settings = RunSettings::new(Policy::DiffServe, 8.0);
        let scenario = Scenario::new("hazard-prop", flat(6.0, 50)).with_hazard(Hazard {
            seed: seed as u64,
            fail_rate,
            degrade_rate,
            load_coupling: coupling,
            ..Hazard::default()
        });
        let original = run_scenario(runtime(), &sys, &settings, &scenario);
        let replay = run_scenario(
            runtime(),
            &sys,
            &settings,
            &scenario.replay(&original.incident_log),
        );
        assert_reports_bit_identical(&original, &replay, "proptest replay");
    }
}

/// Stage-level serving under degradation: a browned-out worker stretches
/// only the *residual* denoise steps of a resumed query. The service time
/// must be `(nameplate − savings) × slowdown` — the savings come off before
/// the health multiplier — not the subtly wrong `nameplate × slowdown −
/// savings`, which would credit the skipped steps at degraded speed.
#[test]
fn degraded_worker_stretches_only_residual_steps() {
    const SLOWDOWN: f64 = 2.5;
    let mut sys = system();
    sys.resume_from_latents = true;
    sys.slo = SimDuration::from_secs(60); // never drop; we measure service
    let mut session = ServingSession::builder()
        .runtime(runtime())
        .config(sys.clone())
        .policy(Policy::ClipperHeavy)
        .build()
        .expect("valid session");
    session
        .inject(ScenarioEvent::Capacity(CapacityEvent::Degrade(8, SLOWDOWN)))
        .expect("the whole fleet may degrade");

    let heavy = &runtime().spec.heavy;
    let state = StageState::completed(runtime().spec.light.steps());
    let reused = reused_steps(heavy.steps(), state, sys.resume_step_credit);
    let savings = resume_savings(heavy.latency(), reused, heavy.steps());
    assert!(savings > 0.0);

    session.submit_spec(QuerySpec::new().at(SimTime::ZERO).resume_from(state));
    session.run_until(SimTime::from_secs(59));
    let outcomes = session.poll();
    let latency = match outcomes.as_slice() {
        [QueryOutcome::Completed(r)] => r.latency_secs(),
        other => panic!("expected one completion, got {other:?}"),
    };
    let nameplate = heavy.latency().exec_latency(1).as_secs_f64();
    let expected = (nameplate - savings) * SLOWDOWN;
    let wrong = nameplate * SLOWDOWN - savings;
    assert!(
        (expected - wrong).abs() > 1e-3,
        "test must be able to tell the formulas apart"
    );
    assert!(
        (latency - expected).abs() < 1e-9,
        "degraded resumed service must stretch only residual steps: \
         {latency} vs expected {expected} (wrong-order formula gives {wrong})"
    );
}

/// Record/replay stays bit-exact with stage-level serving enabled: hazards,
/// resume bookkeeping, and the incident log all reproduce — including the
/// resume aggregates the extended bit-identity check pins.
#[test]
fn hazard_replay_stays_bit_exact_with_resume_enabled() {
    let mut sys = system();
    sys.resume_from_latents = true;
    let settings = RunSettings::new(Policy::DiffServe, 8.0);
    let scenario = Scenario::new("hazardous-resume", flat(7.0, 80)).with_hazard(Hazard {
        seed: 7,
        fail_rate: 0.01,
        degrade_rate: 0.05,
        recover_rate: 0.05,
        restore_rate: 0.03,
        load_coupling: 6.0,
        ..Hazard::default()
    });
    let original = run_scenario(runtime(), &sys, &settings, &scenario);
    assert!(
        !original.incident_log.is_empty(),
        "seeded hazards must fire at these rates"
    );
    assert!(
        original.resumed_queries > 0,
        "escalations under hazards must still resume"
    );
    let replay = run_scenario(
        runtime(),
        &sys,
        &settings,
        &scenario.replay(&original.incident_log),
    );
    assert_reports_bit_identical(&original, &replay, "resume hazard replay");
}

/// Degradation is not fail-stop: a brownout slows service (violations rise
/// vs steady) but conserves every query, and the fleet reports the degraded
/// workers in live snapshots.
#[test]
fn brownout_degrades_service_without_losing_queries() {
    let sys = system();
    let settings = RunSettings::new(Policy::DiffServe, 12.0);
    let steady = run_scenario(
        runtime(),
        &sys,
        &settings,
        &Scenario::new("steady", flat(10.0, 60)),
    );
    let brownout_scenario =
        Scenario::new("brownout", flat(10.0, 60)).worker_degrade(SimTime::from_secs(20), 5, 3.0);
    let brownout = run_scenario(runtime(), &sys, &settings, &brownout_scenario);
    assert_eq!(
        brownout.completed + brownout.dropped,
        brownout.total_queries,
        "brownout leaked queries"
    );
    assert!(
        brownout.violation_ratio >= steady.violation_ratio,
        "slowing 5 of 8 workers 3x cannot improve violations: {} vs {}",
        brownout.violation_ratio,
        steady.violation_ratio
    );
    assert!(
        brownout.mean_latency > steady.mean_latency,
        "brownout must show up in latency: {} vs {}",
        brownout.mean_latency,
        steady.mean_latency
    );

    // Live visibility: a session snapshot reports degraded workers.
    let mut session = ServingSession::builder()
        .runtime(runtime())
        .config(sys)
        .policy(Policy::DiffServe)
        .build()
        .expect("valid session");
    session
        .inject(ScenarioEvent::Capacity(CapacityEvent::Degrade(3, 2.0)))
        .expect("3 of 8 may degrade");
    session.run_until(SimTime::from_secs(4));
    assert_eq!(session.snapshot().degraded_workers, 3);
    // Restoring more than degraded is rejected; restoring them is fine.
    let err = session
        .inject(ScenarioEvent::Capacity(CapacityEvent::Restore(4)))
        .unwrap_err();
    assert!(matches!(err, ScenarioError::RestoreWithoutDegrade { .. }));
    session
        .inject(ScenarioEvent::Capacity(CapacityEvent::Restore(3)))
        .expect("restore the degraded 3");
    session.run_until(SimTime::from_secs(8));
    assert_eq!(session.snapshot().degraded_workers, 0);
    // Injected perturbations land in the final report's incident log.
    let report = session.finish();
    assert_eq!(report.incident_log.len(), 2);
}

/// The acceptance regression: under a brownout, the DiffServe policy solved
/// against *effective* capacity lands measurably fewer SLO violations than
/// the same policy solved against nameplate capacity (the
/// degradation-blindness ablation). The effective-aware controller lowers
/// the threshold and sheds deferrals; the blind one keeps deferring into a
/// heavy tier that no longer has the throughput.
#[test]
fn effective_capacity_beats_nameplate_under_brownout() {
    let sys = system();
    // 10 QPS on 8 workers leaves headroom; a 2x brownout of 6 workers
    // (both light-tier workers and most of the heavy tier) eats it.
    let scenario =
        Scenario::new("brownout", flat(10.0, 120)).worker_degrade(SimTime::from_secs(30), 6, 2.0);

    let effective = run_scenario(
        runtime(),
        &sys,
        &RunSettings::new(Policy::DiffServe, 10.0),
        &scenario,
    );
    let mut blind_settings = RunSettings::new(Policy::DiffServe, 10.0);
    blind_settings.knobs = AblationKnobs::nameplate();
    let nameplate = run_scenario(runtime(), &sys, &blind_settings, &scenario);

    assert!(
        effective.violation_ratio < nameplate.violation_ratio,
        "degradation awareness must reduce violations: effective {} vs nameplate {}",
        effective.violation_ratio,
        nameplate.violation_ratio
    );
    // "Measurably": with margin, so a controller regression cannot hide
    // inside seed noise.
    assert!(
        effective.violation_ratio < nameplate.violation_ratio * 0.8,
        "improvement too small to be the capacity signal: effective {} vs nameplate {}",
        effective.violation_ratio,
        nameplate.violation_ratio
    );
}

/// The health-weighted JSQ regression (sim half): under a brownout, routing
/// that weighs queue depth by worker slowdown lands fewer SLO violations
/// than the health-blind JSQ it replaced. Blind routing keeps feeding
/// stragglers as if they drained at nameplate speed; their queues back up
/// and the drop-front policy sheds exactly those queries.
#[test]
fn health_weighted_jsq_beats_health_blind_under_brownout_on_sim() {
    let sys = system();
    // Near-saturation load with half the fleet at 3x for most of the run:
    // queues must actually build for the routing decision to matter.
    let scenario =
        Scenario::new("brownout", flat(9.0, 120)).worker_degrade(SimTime::from_secs(20), 4, 3.0);

    let weighted = run_scenario(
        runtime(),
        &sys,
        &RunSettings::new(Policy::DiffServe, 9.0),
        &scenario,
    );
    let mut blind_settings = RunSettings::new(Policy::DiffServe, 9.0);
    blind_settings.knobs = AblationKnobs::health_blind();
    let blind = run_scenario(runtime(), &sys, &blind_settings, &scenario);

    assert_eq!(
        weighted.completed + weighted.dropped,
        weighted.total_queries,
        "weighted routing leaked queries"
    );
    assert!(
        weighted.violation_ratio < blind.violation_ratio,
        "health-weighted JSQ must reduce violations under brownout: weighted {} vs blind {}",
        weighted.violation_ratio,
        blind.violation_ratio
    );
}

/// The health-weighted JSQ regression (cluster half): the same brownout on
/// the thread-based testbed. Wall-clock scheduling adds noise, so the
/// workload is chosen for a decisive effect (half the fleet at 3x under
/// near-saturation load) rather than a fine margin.
#[test]
fn health_weighted_jsq_beats_health_blind_under_brownout_on_cluster() {
    let sys = system();
    let cfg = ClusterConfig {
        system: sys.clone(),
        time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
    };
    let scenario =
        Scenario::new("brownout", flat(6.0, 60)).worker_degrade(SimTime::from_secs(10), 4, 3.0);

    let weighted = run_cluster_scenario(
        runtime(),
        &cfg,
        &RunSettings::new(Policy::DiffServe, 6.0),
        &scenario,
    );
    let mut blind_settings = RunSettings::new(Policy::DiffServe, 6.0);
    blind_settings.knobs = AblationKnobs::health_blind();
    let blind = run_cluster_scenario(runtime(), &cfg, &blind_settings, &scenario);

    assert!(
        weighted.violation_ratio < blind.violation_ratio,
        "health-weighted JSQ must reduce violations under brownout: weighted {} vs blind {}",
        weighted.violation_ratio,
        blind.violation_ratio
    );
}

/// Cluster counterpart of the record/replay loop: hazard-drawn faults land
/// in the cluster report's incident log, and replaying the log through a
/// fresh cluster run reproduces the run within the testbed's wall-clock
/// tolerance (bit-exactness is a simulator property; thread scheduling
/// makes the testbed approximate by construction).
#[test]
fn cluster_hazard_incidents_record_and_replay() {
    let sys = system();
    let cfg = ClusterConfig {
        system: sys.clone(),
        time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
    };
    let settings = RunSettings::new(Policy::DiffServe, 7.0);
    let scenario = Scenario::new("hazardous", flat(6.0, 60)).with_hazard(Hazard {
        seed: 11,
        fail_rate: 0.01,
        degrade_rate: 0.06,
        load_coupling: 6.0,
        ..Hazard::default()
    });
    let original = run_cluster_scenario(runtime(), &cfg, &settings, &scenario);
    assert!(
        !original.incident_log.is_empty(),
        "cluster hazards must fire and be logged"
    );
    let replay = run_cluster_scenario(
        runtime(),
        &cfg,
        &settings,
        &scenario.replay(&original.incident_log),
    );
    assert_eq!(
        original.total_queries, replay.total_queries,
        "same arrival stream"
    );
    // The replay re-fires the recorded incidents. It cannot fire more than
    // were recorded (it carries no hazard of its own); a single trailing
    // incident stamped in the run's final instants may miss the replay's
    // shutdown on a slow machine, so allow exactly that much slack.
    assert!(
        replay.incident_log.len() <= original.incident_log.len()
            && replay.incident_log.len() + 1 >= original.incident_log.len(),
        "replay fired {} of {} recorded incidents",
        replay.incident_log.len(),
        original.incident_log.len()
    );
    let fid_gap = (replay.fid - original.fid).abs() / original.fid;
    assert!(fid_gap < 0.3, "fid gap {fid_gap}");
    let viol_gap = (replay.violation_ratio - original.violation_ratio).abs();
    assert!(viol_gap < 0.35, "violation gap {viol_gap}");
}
