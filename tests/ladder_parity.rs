//! Parity checks for the N-tier quality ladder.
//!
//! Two promises ride on the ladder generalization:
//!
//! 1. **Degeneracy** — a two-tier ladder is not "almost" the legacy
//!    cascade, it IS the legacy cascade: same artifacts, same planner,
//!    same serving decisions, bit for bit. The property test below runs
//!    randomly drawn workloads through a legacy [`CascadeRuntime`] and
//!    through the equivalent ladder-prepared runtime and demands equal
//!    report fingerprints (aggregates, every series, the per-tier
//!    breakdown).
//! 2. **Backend parity** — for a real 3-tier ladder the simulator and the
//!    thread-based cluster testbed must agree on where traffic settles:
//!    per-tier escalation counts within a loose wall-clock tolerance,
//!    mirroring the paper's §4.3 sim-vs-testbed validation.

use diffserve::prelude::*;
use diffserve_imagegen::TierLadder;
use diffserve_simkit::time::SimDuration;
use proptest::prelude::*;
use std::sync::OnceLock;

fn disc_config() -> DiscriminatorConfig {
    DiscriminatorConfig {
        train_prompts: 500,
        epochs: 10,
        ..Default::default()
    }
}

/// Legacy two-tier runtime (Cascade 1).
fn legacy_runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare(cascade1(FeatureSpec::default()), 1500, 2024, disc_config())
    })
}

/// The same cascade prepared through the ladder path (a 2-rung ladder).
fn degenerate_runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare_ladder(
            TierLadder::from_cascade(&cascade1(FeatureSpec::default())),
            1500,
            2024,
            disc_config(),
        )
    })
}

/// A real 3-tier ladder runtime for the backend-parity check.
fn ladder3_runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare_ladder(ladder3(FeatureSpec::default()), 1500, 2024, disc_config())
    })
}

/// FNV-1a over every aggregate, every series, and the per-tier breakdown
/// of a [`RunReport`], floats by bit pattern. Mirrors the golden-report
/// fingerprint but additionally pins `tier_breakdown`, so a ladder run
/// that merely *aggregates* identically cannot pass while routing
/// differently.
fn fingerprint(report: &RunReport) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    fn eat(h: &mut u64, v: u64) {
        for b in v.to_le_bytes() {
            *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    eat(&mut h, report.total_queries);
    eat(&mut h, report.completed);
    eat(&mut h, report.dropped);
    eat(&mut h, report.late);
    eat(&mut h, report.violation_ratio.to_bits());
    eat(&mut h, report.mean_latency.to_bits());
    eat(&mut h, report.fid.to_bits());
    eat(&mut h, report.mean_windowed_fid.to_bits());
    eat(&mut h, report.heavy_fraction.to_bits());
    eat(&mut h, report.gpu_time_per_query.to_bits());
    for series in [
        &report.fid_series,
        &report.violation_series,
        &report.demand_series,
        &report.threshold_series,
        &report.deferral_error_series,
    ] {
        eat(&mut h, series.len() as u64);
        for &(t, v) in series {
            eat(&mut h, t.to_bits());
            eat(&mut h, v.to_bits());
        }
    }
    eat(&mut h, report.tier_breakdown.len() as u64);
    for s in &report.tier_breakdown {
        eat(&mut h, s.tier as u64);
        eat(&mut h, s.completions);
        eat(&mut h, s.escalated_past);
        eat(&mut h, s.mean_latency.to_bits());
        eat(&mut h, s.fid.to_bits());
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// An N-tier ladder degenerated to two tiers serves bit-identically
    /// to the legacy cascade across randomly drawn workloads — with and
    /// without a [`LadderConfig`] attached (a two-tier runtime stays on
    /// the legacy planner either way).
    #[test]
    fn two_tier_ladder_is_bit_identical_to_legacy(
        scenario_idx in 0usize..9,
        qps_tenths in 40u32..80,
        num_workers in 6usize..10,
        horizon in 30u64..60,
        attach_ladder_config in 0u8..2,
    ) {
        let system = SystemConfig {
            num_workers,
            ladder: (attach_ladder_config == 1).then(LadderConfig::default),
            ..Default::default()
        };
        let base = Trace::constant(f64::from(qps_tenths) / 10.0, SimDuration::from_secs(horizon))
            .expect("valid trace");
        let scenarios = standard_scenarios(&base, num_workers);
        let scenario = &scenarios[scenario_idx];
        let settings = RunSettings::new(Policy::DiffServe, scenario.effective_trace().max_qps());

        let legacy = run_scenario(legacy_runtime(), &system, &settings, scenario);
        let ladder = run_scenario(degenerate_runtime(), &system, &settings, scenario);
        prop_assert_eq!(
            fingerprint(&legacy),
            fingerprint(&ladder),
            "two-tier ladder diverged from the legacy cascade on {}",
            scenario.name()
        );
    }
}

/// The simulator and the cluster testbed must agree on where a 3-tier
/// ladder's traffic settles: the same arrival stream, and per-boundary
/// escalation counts within a loose tolerance of each other (the cluster
/// runs on wall-clock threads, so exact counts differ).
#[test]
fn sim_and_cluster_agree_on_ladder_escalations() {
    let system = SystemConfig {
        num_workers: 8,
        ladder: Some(LadderConfig::default()),
        ..Default::default()
    };
    let trace = Trace::constant(5.0, SimDuration::from_secs(50)).unwrap();
    let settings = RunSettings::new(Policy::DiffServe, 5.0);

    let sim = run_trace(ladder3_runtime(), &system, &settings, &trace);
    let testbed = run_cluster(
        ladder3_runtime(),
        &ClusterConfig {
            system: system.clone(),
            time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
        },
        &settings,
        &trace,
    );

    assert!(sim.total_queries > 100);
    assert_eq!(
        testbed.total_queries, sim.total_queries,
        "same arrival stream"
    );
    assert_eq!(sim.tier_breakdown.len(), 3, "three tiers reported");
    assert_eq!(testbed.tier_breakdown.len(), 3, "three tiers reported");
    // Per-boundary escalation mass as a fraction of all queries: the two
    // backends run the same controller on the same artifacts, so they
    // must settle within a loose wall-clock tolerance of each other.
    let total = sim.total_queries as f64;
    for (s, t) in sim.tier_breakdown.iter().zip(&testbed.tier_breakdown) {
        assert_eq!(s.tier, t.tier);
        let gap = (s.escalated_past as f64 - t.escalated_past as f64).abs() / total;
        assert!(
            gap < 0.20,
            "tier {} escalation gap {gap:.3}: sim {} vs testbed {} of {} queries",
            s.tier,
            s.escalated_past,
            t.escalated_past,
            sim.total_queries
        );
    }
    // Both backends actually used the mid tier.
    assert!(
        sim.tier_breakdown[1].completions > 0,
        "sim mid tier served traffic"
    );
    assert!(
        testbed.tier_breakdown[1].completions > 0,
        "testbed mid tier served traffic"
    );
}
