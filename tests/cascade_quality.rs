//! Integration tests of the cascade-quality claims that motivate the paper
//! (§2): easy-query share, discriminator superiority over metric-based and
//! random routing, and the FID dip below all-heavy serving.

use diffserve::imagegen::{
    cascade1, cascade2, easy_query_fraction, evaluate_cascade, evaluate_single_model, DatasetKind,
    DiscriminatorConfig, FeatureSpec, PromptDataset, RoutingRule,
};
use diffserve::serving::CascadeRuntime;
use std::sync::OnceLock;

fn runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            3000,
            555,
            DiscriminatorConfig {
                train_prompts: 800,
                epochs: 15,
                ..Default::default()
            },
        )
    })
}

#[test]
fn easy_query_share_is_in_paper_band_for_both_pairs() {
    let spec = FeatureSpec::default();
    let dataset = PromptDataset::synthesize(DatasetKind::MsCoco, 4000, 9, spec);
    for c in [cascade1(spec), cascade2(spec)] {
        let frac = easy_query_fraction(&dataset, &c.light, &c.heavy);
        assert!(
            (0.15..=0.45).contains(&frac),
            "{}: easy fraction {frac} outside 20-40% band (±5pp tolerance)",
            c.name
        );
    }
}

#[test]
fn discriminator_routing_dominates_random_across_the_sweep() {
    let rt = runtime();
    let rule = RoutingRule::Discriminator(&rt.discriminator);
    for defer_target in [0.3, 0.5, 0.7] {
        // Discriminator threshold ≈ calibrated deferral target.
        let disc = evaluate_cascade(
            &rt.dataset,
            &rt.spec.light,
            &rt.spec.heavy,
            &rule,
            defer_target,
        );
        let random = evaluate_cascade(
            &rt.dataset,
            &rt.spec.light,
            &rt.spec.heavy,
            &RoutingRule::Random { seed: 99 },
            disc.deferral_fraction,
        );
        assert!(
            disc.fid < random.fid,
            "at deferral {:.2}: discriminator {:.2} must beat random {:.2}",
            disc.deferral_fraction,
            disc.fid,
            random.fid
        );
    }
}

#[test]
fn blended_cascade_beats_all_heavy_fid() {
    let rt = runtime();
    let rule = RoutingRule::Discriminator(&rt.discriminator);
    let all_heavy = evaluate_single_model(&rt.dataset, &rt.spec.heavy);
    let best = (1..10)
        .map(|i| {
            evaluate_cascade(
                &rt.dataset,
                &rt.spec.light,
                &rt.spec.heavy,
                &rule,
                i as f64 / 10.0,
            )
            .fid
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        best < all_heavy.fid,
        "best blend {best:.2} must beat all-heavy {:.2} (paper §2.2)",
        all_heavy.fid
    );
}

#[test]
fn fid_latency_curve_is_u_shaped() {
    // FID falls as deferral rises, dips, then worsens at the all-heavy end.
    let rt = runtime();
    let rule = RoutingRule::Discriminator(&rt.discriminator);
    let fids: Vec<f64> = (0..=10)
        .map(|i| {
            evaluate_cascade(
                &rt.dataset,
                &rt.spec.light,
                &rt.spec.heavy,
                &rule,
                i as f64 / 10.0,
            )
            .fid
        })
        .collect();
    let min_idx = fids
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    assert!(min_idx > 0, "minimum must not be all-light");
    assert!(min_idx < 10, "minimum must not be all-heavy (U-shape)");
    assert!(fids[0] > fids[min_idx] + 1.0, "left arm of the U missing");
    // All-heavy uses threshold > max confidence.
    let all_heavy = evaluate_cascade(&rt.dataset, &rt.spec.light, &rt.spec.heavy, &rule, 1.01);
    assert!(
        all_heavy.fid > fids[min_idx] + 0.5,
        "right arm of the U missing"
    );
}

#[test]
fn fig1a_variant_fids_are_ordered_as_in_the_paper() {
    let rt = runtime();
    let spec = FeatureSpec::default();
    let fid_of =
        |m: &diffserve::imagegen::DiffusionModel| evaluate_single_model(&rt.dataset, m).fid;
    let sdxs = fid_of(&diffserve::imagegen::sdxs(spec));
    let sdturbo = fid_of(&diffserve::imagegen::sd_turbo(spec));
    let sdv15 = fid_of(&diffserve::imagegen::sd_v15(spec));
    assert!(
        sdxs > sdturbo,
        "SDXS ({sdxs:.1}) must be worse than SD-Turbo ({sdturbo:.1})"
    );
    assert!(
        sdturbo > sdv15,
        "SD-Turbo ({sdturbo:.1}) must be worse than SDv1.5 ({sdv15:.1})"
    );
    // Paper band: FIDs between ~16 and ~27 for the 512px family.
    for (name, fid) in [("sdxs", sdxs), ("sd-turbo", sdturbo), ("sd-v1.5", sdv15)] {
        assert!(
            (12.0..=32.0).contains(&fid),
            "{name} FID {fid:.1} far outside the paper's range"
        );
    }
}
