//! Property tests: the MILP allocator and the exhaustive grid allocator are
//! interchangeable — same optimal threshold on randomized inputs — and the
//! allocator respects its own constraints.

use diffserve::imagegen::{DeferralProfile, LatencyProfile};
use diffserve::serving::{solve_exhaustive, solve_milp_allocation, AllocatorInputs};
use proptest::prelude::*;

fn uniform_deferral() -> DeferralProfile {
    DeferralProfile::from_confidences((0..500).map(|i| i as f64 / 500.0).collect()).unwrap()
}

fn thresholds(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.9 * i as f64 / (n - 1) as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn milp_and_exhaustive_agree(
        demand in 1.0f64..40.0,
        workers in 4usize..24,
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..2.0,
        slo in 3.0f64..10.0,
    ) {
        let deferral = uniform_deferral();
        let grid = thresholds(19);
        let batches = [1usize, 2, 4, 8, 16];
        let inputs = AllocatorInputs {
            demand_qps: demand,
            queue_delay_light: q1,
            queue_delay_heavy: q2,
            slo,
            total_workers: workers,
            deferral: &deferral,
            light: LatencyProfile::new(0.10, 0.55),
            heavy: LatencyProfile::new(1.78, 0.12),
            resume_heavy: None,
            discriminator_latency: 0.01,
            batch_sizes: &batches,
            thresholds: &grid,
        };
        let ex = solve_exhaustive(&inputs);
        let milp = solve_milp_allocation(&inputs);
        match (ex, milp) {
            (Some(e), Some(m)) => {
                prop_assert!(
                    (e.threshold - m.threshold).abs() < 1e-9,
                    "thresholds differ: exhaustive {} vs milp {}",
                    e.threshold, m.threshold
                );
                prop_assert_eq!(e.light_batch, m.light_batch);
                prop_assert_eq!(e.heavy_batch, m.heavy_batch);
            }
            (None, None) => {}
            (e, m) => prop_assert!(false, "feasibility disagreement: {:?} vs {:?}", e, m),
        }
    }

    #[test]
    fn allocations_satisfy_their_constraints(
        demand in 1.0f64..30.0,
        workers in 4usize..20,
    ) {
        let deferral = uniform_deferral();
        let grid = thresholds(19);
        let batches = [1usize, 2, 4, 8, 16];
        let inputs = AllocatorInputs {
            demand_qps: demand,
            queue_delay_light: 0.1,
            queue_delay_heavy: 0.3,
            slo: 5.0,
            total_workers: workers,
            deferral: &deferral,
            light: LatencyProfile::new(0.10, 0.55),
            heavy: LatencyProfile::new(1.78, 0.12),
            resume_heavy: None,
            discriminator_latency: 0.01,
            batch_sizes: &batches,
            thresholds: &grid,
        };
        if let Some(a) = solve_exhaustive(&inputs) {
            // Eq. 4: capacity.
            prop_assert!(a.light_workers + a.heavy_workers <= workers);
            prop_assert!(a.light_workers >= 1 && a.heavy_workers >= 1);
            // Eq. 2: light throughput covers demand.
            let disc = 0.01;
            let light_lat = inputs.light.exec_latency(a.light_batch).as_secs_f64()
                + disc * a.light_batch as f64;
            let t1 = a.light_batch as f64 / light_lat;
            prop_assert!(a.light_workers as f64 * t1 >= demand - 1e-9);
            // Eq. 3: heavy throughput covers the deferred fraction.
            let f = deferral.fraction_deferred(a.threshold);
            let t2 = inputs.heavy.throughput(a.heavy_batch);
            prop_assert!(a.heavy_workers as f64 * t2 >= demand * f - 1e-9);
            // Eq. 1: latency budget.
            let lat = light_lat
                + inputs.queue_delay_light
                + inputs.heavy.exec_latency(a.heavy_batch).as_secs_f64()
                + inputs.queue_delay_heavy;
            prop_assert!(lat <= inputs.slo + 1e-9);
        }
    }

    #[test]
    fn threshold_monotone_in_workers(
        demand in 2.0f64..20.0,
        base_workers in 4usize..12,
    ) {
        let deferral = uniform_deferral();
        let grid = thresholds(19);
        let batches = [1usize, 2, 4, 8, 16];
        let mk = |w: usize| AllocatorInputs {
            demand_qps: demand,
            queue_delay_light: 0.1,
            queue_delay_heavy: 0.3,
            slo: 5.0,
            total_workers: w,
            deferral: &deferral,
            light: LatencyProfile::new(0.10, 0.55),
            heavy: LatencyProfile::new(1.78, 0.12),
            resume_heavy: None,
            discriminator_latency: 0.01,
            batch_sizes: &batches,
            thresholds: &grid,
        };
        let small = solve_exhaustive(&mk(base_workers));
        let large = solve_exhaustive(&mk(base_workers * 2));
        if let (Some(s), Some(l)) = (small, large) {
            prop_assert!(
                l.threshold >= s.threshold - 1e-9,
                "more workers should never lower the optimal threshold: {} -> {}",
                s.threshold, l.threshold
            );
        }
    }
}
