//! Golden-report fingerprints for the nine standard scenarios.
//!
//! The discrete-event simulator promises bit-determinism, and this PR's
//! arena refactor of its hot paths must not move a single bit of any
//! report. These fingerprints were captured immediately *before* the
//! refactor (and after the health-weighted JSQ fix, which they therefore
//! include); the tests prove every later change to the dispatch path is
//! behavior-preserving.
//!
//! Regenerating (only when a PR *intends* to change simulator behavior):
//! `cargo test --release --test golden_reports -- --ignored --nocapture`
//! prints the current table; paste it over `EXPECTED`.

use diffserve::prelude::*;
use diffserve_simkit::time::SimDuration;
use std::sync::OnceLock;

fn runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            1500,
            2024,
            DiscriminatorConfig {
                train_prompts: 500,
                epochs: 10,
                ..Default::default()
            },
        )
    })
}

fn system() -> SystemConfig {
    SystemConfig {
        num_workers: 8,
        ..Default::default()
    }
}

fn scenarios() -> Vec<Scenario> {
    let base = Trace::constant(6.0, SimDuration::from_secs(90)).unwrap();
    standard_scenarios(&base, system().num_workers)
}

/// FNV-1a over every aggregate and every series of a [`RunReport`], floats
/// by bit pattern. Two reports with equal fingerprints are (for practical
/// purposes) bit-identical to downstream analysis.
fn fingerprint(report: &RunReport) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    fn eat(h: &mut u64, v: u64) {
        for b in v.to_le_bytes() {
            *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    eat(&mut h, report.total_queries);
    eat(&mut h, report.completed);
    eat(&mut h, report.dropped);
    eat(&mut h, report.late);
    eat(&mut h, report.violation_ratio.to_bits());
    eat(&mut h, report.mean_latency.to_bits());
    eat(&mut h, report.fid.to_bits());
    eat(&mut h, report.mean_windowed_fid.to_bits());
    eat(&mut h, report.heavy_fraction.to_bits());
    for series in [
        &report.fid_series,
        &report.violation_series,
        &report.demand_series,
        &report.threshold_series,
        &report.deferral_error_series,
    ] {
        eat(&mut h, series.len() as u64);
        for &(t, v) in series {
            eat(&mut h, t.to_bits());
            eat(&mut h, v.to_bits());
        }
    }
    eat(&mut h, report.incident_log.len() as u64);
    for incident in &report.incident_log {
        eat(&mut h, incident.at.as_secs_f64().to_bits());
        // Debug formatting of f64 round-trips exactly, so the encoded
        // event is a faithful stand-in for its bits.
        for b in format!("{:?}", incident.event).bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    h
}

/// [`fingerprint`] extended with the stage-level-serving aggregates. The
/// legacy fingerprint stays byte-for-byte what it was (so the restart-mode
/// goldens never move); staged-mode runs pin the new fields too.
fn fingerprint_staged(report: &RunReport) -> u64 {
    const PRIME: u64 = 0x1000_0000_01b3;
    fn eat(h: &mut u64, v: u64) {
        for b in v.to_le_bytes() {
            *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    let mut h = fingerprint(report);
    eat(&mut h, report.resumed_queries);
    eat(&mut h, report.mean_reused_steps.to_bits());
    eat(&mut h, report.mean_heavy_latency.to_bits());
    eat(&mut h, report.gpu_time_per_query.to_bits());
    h
}

fn run(scenario: &Scenario) -> RunReport {
    let peak = scenario.effective_trace().max_qps();
    run_scenario(
        runtime(),
        &system(),
        &RunSettings::new(Policy::DiffServe, peak),
        scenario,
    )
}

fn run_staged(scenario: &Scenario) -> RunReport {
    let peak = scenario.effective_trace().max_qps();
    let mut sys = system();
    sys.resume_from_latents = true;
    run_scenario(
        runtime(),
        &sys,
        &RunSettings::new(Policy::DiffServe, peak),
        scenario,
    )
}

/// Captured fingerprints, one per standard scenario, in
/// [`standard_scenarios`] order.
const EXPECTED: [(&str, u64); 9] = [
    ("steady", 0xd8ed52b884601f25),
    ("flash-crowd", 0xe76c0f0d1a9c20a0),
    ("worker-failure", 0x9261ecf885adb356),
    ("double-failure", 0x06f6ae7f4757288e),
    ("cascading-failure", 0xe13991380b2bb5dd),
    ("demand-shock", 0xbe9a6df3f0c0dee6),
    ("hard-prompts", 0x05f52f29b6e485b5),
    ("brownout", 0x6f7dd204e407548a),
    ("load-correlated-cascade", 0x1ea72e005de39ea8),
];

/// Every standard scenario's report must match its pre-refactor golden
/// fingerprint bit for bit.
#[test]
fn standard_scenario_reports_match_goldens() {
    for (scenario, &(name, expected)) in scenarios().iter().zip(EXPECTED.iter()) {
        assert_eq!(scenario.name(), name, "scenario order drifted");
        let got = fingerprint(&run(scenario));
        assert_eq!(
            got, expected,
            "{name}: report fingerprint {got:#018x} != golden {expected:#018x} — \
             the simulator's behavior changed; if intentional, regenerate with \
             `cargo test --release --test golden_reports -- --ignored --nocapture`"
        );
    }
}

/// Captured fingerprints for the same nine scenarios with stage-level
/// serving enabled (`resume_from_latents = true`), hashed with
/// [`fingerprint_staged`] so the resume aggregates are pinned too.
const EXPECTED_RESUME: [(&str, u64); 9] = [
    ("steady", 0x8b183ab52f05225a),
    ("flash-crowd", 0xff5f84b3aeec2ddd),
    ("worker-failure", 0xc4bf129c1415bdf3),
    ("double-failure", 0x627876e12f72fe7a),
    ("cascading-failure", 0x14691d2c085a13a7),
    ("demand-shock", 0x6ab5f40fbaf78b5f),
    ("hard-prompts", 0x3a30f2ca978fe412),
    ("brownout", 0x01e5301ca4f6e5b4),
    ("load-correlated-cascade", 0xd2ac06480b0cb2b3),
];

/// Staged-mode runs are just as deterministic as restart-mode runs: every
/// standard scenario with resume enabled must match its golden fingerprint
/// bit for bit, resume aggregates included.
#[test]
fn staged_scenario_reports_match_goldens() {
    for (scenario, &(name, expected)) in scenarios().iter().zip(EXPECTED_RESUME.iter()) {
        assert_eq!(scenario.name(), name, "scenario order drifted");
        let report = run_staged(scenario);
        let got = fingerprint_staged(&report);
        assert_eq!(
            got, expected,
            "{name}: staged report fingerprint {got:#018x} != golden {expected:#018x} — \
             the resume path's behavior changed; if intentional, regenerate with \
             `cargo test --release --test golden_reports -- --ignored --nocapture`"
        );
    }
}

/// Prints the current fingerprint tables for pasting into `EXPECTED` and
/// `EXPECTED_RESUME`.
#[test]
#[ignore = "generator, not a check — run with --ignored --nocapture"]
fn print_current_fingerprints() {
    println!("EXPECTED:");
    for scenario in scenarios() {
        println!(
            "    (\"{}\", {:#018x}),",
            scenario.name(),
            fingerprint(&run(&scenario))
        );
    }
    println!("EXPECTED_RESUME:");
    for scenario in scenarios() {
        println!(
            "    (\"{}\", {:#018x}),",
            scenario.name(),
            fingerprint_staged(&run_staged(&scenario))
        );
    }
}
