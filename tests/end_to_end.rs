//! End-to-end integration tests across the whole workspace: preparing a
//! cascade, serving traces under every policy, and checking the paper's
//! qualitative results hold.

use diffserve::prelude::*;
use diffserve_simkit::time::SimDuration;
use std::sync::OnceLock;

fn runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            2000,
            1234,
            DiscriminatorConfig {
                train_prompts: 600,
                epochs: 12,
                ..Default::default()
            },
        )
    })
}

fn config() -> SystemConfig {
    SystemConfig {
        num_workers: 16,
        ..Default::default()
    }
}

#[test]
fn every_policy_serves_the_diurnal_trace() {
    let trace = synthesize_azure_trace(&AzureTraceConfig {
        min_qps: 4.0,
        max_qps: 24.0,
        duration: SimDuration::from_secs(120),
        ..Default::default()
    })
    .unwrap();
    for policy in Policy::all() {
        let report = run_trace(
            runtime(),
            &config(),
            &RunSettings::new(policy, trace.max_qps()),
            &trace,
        );
        assert_eq!(
            report.completed + report.dropped,
            report.total_queries,
            "{} lost queries",
            policy.name()
        );
        assert!(report.fid.is_finite(), "{} produced no FID", policy.name());
        assert!(
            report.total_queries > 500,
            "{} saw too few queries",
            policy.name()
        );
    }
}

#[test]
fn paper_orderings_hold_on_dynamic_trace() {
    let trace = synthesize_azure_trace(&AzureTraceConfig {
        min_qps: 4.0,
        max_qps: 28.0,
        duration: SimDuration::from_secs(200),
        ..Default::default()
    })
    .unwrap();
    let run = |p: Policy| {
        run_trace(
            runtime(),
            &config(),
            &RunSettings::new(p, trace.max_qps()),
            &trace,
        )
    };
    let light = run(Policy::ClipperLight);
    let heavy = run(Policy::ClipperHeavy);
    let proteus = run(Policy::Proteus);
    let ds_static = run(Policy::DiffServeStatic);
    let ds = run(Policy::DiffServe);

    // Fig. 5 orderings.
    assert!(
        light.fid > ds.fid,
        "DiffServe must beat Clipper-Light on FID"
    );
    assert!(proteus.fid > ds.fid, "DiffServe must beat Proteus on FID");
    assert!(
        ds_static.fid >= ds.fid - 0.3,
        "DiffServe ~>= static variant"
    );
    assert!(
        heavy.violation_ratio > 10.0 * ds.violation_ratio.max(0.01),
        "Clipper-Heavy must suffer far more violations ({} vs {})",
        heavy.violation_ratio,
        ds.violation_ratio
    );
    assert!(
        ds.violation_ratio < 0.08,
        "DiffServe violations too high: {}",
        ds.violation_ratio
    );
    // The cascade outperforms even all-heavy serving on FID (paper §4.2:
    // easy queries give the blend a more real-like distribution).
    assert!(
        ds.fid < heavy.fid + 0.5,
        "DiffServe {} should be at least comparable to Clipper-Heavy {}",
        ds.fid,
        heavy.fid
    );
}

#[test]
fn quality_throughput_tradeoff_is_monotone_in_capacity() {
    // More workers -> more heavy capacity -> higher threshold -> better FID.
    let trace = Trace::constant(10.0, SimDuration::from_secs(80)).unwrap();
    let mut last_fid = f64::INFINITY;
    for workers in [6usize, 12, 24] {
        let cfg = SystemConfig {
            num_workers: workers,
            ..Default::default()
        };
        let report = run_trace(
            runtime(),
            &cfg,
            &RunSettings::new(Policy::DiffServe, 10.0),
            &trace,
        );
        assert!(
            report.fid <= last_fid + 0.8,
            "FID should not degrade with capacity: {} workers -> {}",
            workers,
            report.fid
        );
        last_fid = report.fid;
    }
}

#[test]
fn slo_accounting_matches_latency_distribution() {
    let trace = Trace::constant(8.0, SimDuration::from_secs(60)).unwrap();
    let report = run_trace(
        runtime(),
        &config(),
        &RunSettings::new(Policy::DiffServe, 8.0),
        &trace,
    );
    // With a 5s SLO and low violations, mean latency must sit well below 5s.
    assert!(report.mean_latency < 5.0);
    assert!(report.violation_ratio < 0.05);
}

#[test]
fn static_trace_diffserve_equals_its_static_variant() {
    // Paper §4.2: "Under static query demand, DiffServe-Static and
    // DiffServe perform identically" (once provisioned for that demand).
    let trace = Trace::constant(12.0, SimDuration::from_secs(100)).unwrap();
    let ds = run_trace(
        runtime(),
        &config(),
        &RunSettings::new(Policy::DiffServe, 12.0),
        &trace,
    );
    let st = run_trace(
        runtime(),
        &config(),
        &RunSettings::new(Policy::DiffServeStatic, 12.0),
        &trace,
    );
    assert!(
        (ds.fid - st.fid).abs() < 1.0,
        "static-demand FIDs should be close: {} vs {}",
        ds.fid,
        st.fid
    );
    assert!((ds.violation_ratio - st.violation_ratio).abs() < 0.05);
}
