//! The paper's §4.3 validation: the discrete-event simulator and the
//! (thread-based) testbed must agree on system-level metrics for the same
//! workload. The paper reports 0.56% FID and 1.1-point SLO-violation gaps;
//! this wall-clock miniature allows looser tolerances but the same check.

use diffserve::prelude::*;
use diffserve_simkit::time::SimDuration;
use std::sync::OnceLock;

fn runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            1500,
            2024,
            DiscriminatorConfig {
                train_prompts: 500,
                epochs: 10,
                ..Default::default()
            },
        )
    })
}

#[test]
fn simulator_and_cluster_agree_for_diffserve() {
    let system = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };
    let trace = Trace::constant(5.0, SimDuration::from_secs(50)).unwrap();
    let settings = RunSettings::new(Policy::DiffServe, 5.0);

    let sim = run_trace(runtime(), &system, &settings, &trace);
    let testbed = run_cluster(
        runtime(),
        &ClusterConfig {
            system: system.clone(),
            time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
        },
        &settings,
        &trace,
    );

    assert!(sim.total_queries > 100);
    assert!(
        testbed.total_queries == sim.total_queries,
        "same arrival stream"
    );
    let fid_gap = (testbed.fid - sim.fid).abs() / sim.fid;
    assert!(
        fid_gap < 0.25,
        "FID gap {fid_gap:.3}: sim {:.2} vs testbed {:.2}",
        sim.fid,
        testbed.fid
    );
    let viol_gap = (testbed.violation_ratio - sim.violation_ratio).abs();
    assert!(viol_gap < 0.30, "violation gap {viol_gap:.3}");

    // The cluster controller records its threshold decisions: the report's
    // threshold series must be populated (it used to ship empty, silently
    // blanking every threshold-over-time analysis on cluster runs) and must
    // track the simulator's within tolerance — same workload, same shared
    // control plane.
    assert!(
        !sim.threshold_series.is_empty(),
        "sim threshold series empty"
    );
    assert!(
        !testbed.threshold_series.is_empty(),
        "cluster threshold series empty"
    );
    let mean_t = |r: &RunReport| {
        r.threshold_series.iter().map(|&(_, t)| t).sum::<f64>() / r.threshold_series.len() as f64
    };
    let t_gap = (mean_t(&testbed) - mean_t(&sim)).abs();
    assert!(
        t_gap < 0.2,
        "cluster threshold must track the sim's: gap {t_gap:.3} (sim {:.3}, cluster {:.3})",
        mean_t(&sim),
        mean_t(&testbed)
    );
}

#[test]
fn simulator_and_cluster_agree_with_online_estimator() {
    // Both engines drive the same `core::control::ControlLoop`, so turning
    // on the online deferral estimator must keep them in agreement — and
    // both must record the deferral-estimation-error telemetry.
    let system = SystemConfig {
        num_workers: 8,
        online_profile_refresh: true,
        online_profile_window: 128,
        online_profile_min_samples: 32,
        ..Default::default()
    };
    let trace = Trace::constant(5.0, SimDuration::from_secs(50)).unwrap();
    let settings = RunSettings::new(Policy::DiffServe, 5.0);

    let sim = run_trace(runtime(), &system, &settings, &trace);
    let testbed = run_cluster(
        runtime(),
        &ClusterConfig {
            system: system.clone(),
            time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
        },
        &settings,
        &trace,
    );

    assert_eq!(
        sim.total_queries, testbed.total_queries,
        "same arrival stream"
    );
    let fid_gap = (testbed.fid - sim.fid).abs() / sim.fid;
    assert!(
        fid_gap < 0.25,
        "FID gap {fid_gap:.3}: sim {:.2} vs testbed {:.2}",
        sim.fid,
        testbed.fid
    );
    let viol_gap = (testbed.violation_ratio - sim.violation_ratio).abs();
    assert!(viol_gap < 0.30, "violation gap {viol_gap:.3}");
    assert!(
        !sim.deferral_error_series.is_empty(),
        "simulator must record estimation error"
    );
    assert!(
        !testbed.deferral_error_series.is_empty(),
        "testbed must record estimation error"
    );
    for r in [&sim, &testbed] {
        for &(_, e) in &r.deferral_error_series {
            assert!((0.0..=1.0).contains(&e), "error out of range: {e}");
        }
    }
}

#[test]
fn simulator_and_cluster_agree_with_resume_from_latents() {
    // Stage-level serving: with resume enabled, both engines must resume
    // every cascade escalation from the light tier's latents and agree on
    // the resulting system-level metrics — same shared control plane, same
    // residual-step arithmetic.
    let system = SystemConfig {
        num_workers: 8,
        resume_from_latents: true,
        ..Default::default()
    };
    let trace = Trace::constant(5.0, SimDuration::from_secs(50)).unwrap();
    let settings = RunSettings::new(Policy::DiffServe, 5.0);

    let sim = run_trace(runtime(), &system, &settings, &trace);
    let testbed = run_cluster(
        runtime(),
        &ClusterConfig {
            system: system.clone(),
            time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
        },
        &settings,
        &trace,
    );

    assert_eq!(
        sim.total_queries, testbed.total_queries,
        "same arrival stream"
    );
    assert!(sim.resumed_queries > 0, "sim must resume escalations");
    assert!(
        testbed.resumed_queries > 0,
        "cluster must resume escalations"
    );

    // Every escalated query resumes from the same full light-tier state, so
    // the per-query reused-step count is one constant — both engines must
    // report exactly it, not merely something close.
    let heavy = &runtime().spec.heavy;
    let expected_reuse = reused_steps(
        heavy.steps(),
        StageState::completed(runtime().spec.light.steps()),
        system.resume_step_credit,
    ) as f64;
    assert!(
        (sim.mean_reused_steps - expected_reuse).abs() < 1e-9,
        "sim mean reused steps {} vs {expected_reuse}",
        sim.mean_reused_steps
    );
    assert!(
        (testbed.mean_reused_steps - expected_reuse).abs() < 1e-9,
        "cluster mean reused steps {} vs {expected_reuse}",
        testbed.mean_reused_steps
    );

    let fid_gap = (testbed.fid - sim.fid).abs() / sim.fid;
    assert!(
        fid_gap < 0.25,
        "FID gap {fid_gap:.3}: sim {:.2} vs testbed {:.2}",
        sim.fid,
        testbed.fid
    );
    let viol_gap = (testbed.violation_ratio - sim.violation_ratio).abs();
    assert!(viol_gap < 0.30, "violation gap {viol_gap:.3}");
    // GPU time is accounted analytically per query in both engines, so the
    // gap reflects only routing-mix differences, not wall-clock noise.
    let gpu_gap = (testbed.gpu_time_per_query - sim.gpu_time_per_query).abs()
        / sim.gpu_time_per_query.max(1e-9);
    assert!(
        gpu_gap < 0.25,
        "GPU-time gap {gpu_gap:.3}: sim {:.3} vs testbed {:.3}",
        sim.gpu_time_per_query,
        testbed.gpu_time_per_query
    );
}

#[test]
fn simulator_and_cluster_agree_on_addon_aggregates() {
    // Add-on serving: both engines draw each query's add-on requirement
    // from the same stateless per-query stream and charge module swaps
    // through the same LRU semantics, so the hit-rate and swap-time
    // aggregates must agree. Exact per-lookup equality is not expected —
    // thread scheduling changes batch composition — but the aggregates are
    // workload properties and must track.
    let system = SystemConfig {
        num_workers: 8,
        addons: Some(AddonsConfig::demo(2024)),
        ..Default::default()
    };
    let trace = Trace::constant(5.0, SimDuration::from_secs(50)).unwrap();
    let settings = RunSettings::new(Policy::DiffServe, 5.0);

    let sim = run_trace(runtime(), &system, &settings, &trace);
    let testbed = run_cluster(
        runtime(),
        &ClusterConfig {
            system: system.clone(),
            time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
        },
        &settings,
        &trace,
    );

    assert_eq!(
        sim.total_queries, testbed.total_queries,
        "same arrival stream"
    );
    assert!(
        sim.addon_stats.total_lookups() > 50,
        "sim must exercise the module caches: {} lookups",
        sim.addon_stats.total_lookups()
    );
    assert!(
        testbed.addon_stats.total_lookups() > 50,
        "cluster must exercise the module caches: {} lookups",
        testbed.addon_stats.total_lookups()
    );
    let hit_gap = (testbed.addon_stats.total_hit_rate() - sim.addon_stats.total_hit_rate()).abs();
    assert!(
        hit_gap < 0.20,
        "hit-rate gap {hit_gap:.3}: sim {:.3} vs testbed {:.3}",
        sim.addon_stats.total_hit_rate(),
        testbed.addon_stats.total_hit_rate()
    );
    let swap_gap =
        (testbed.addon_stats.total_mean_swap_secs() - sim.addon_stats.total_mean_swap_secs()).abs();
    assert!(
        swap_gap < 0.10,
        "mean-swap gap {swap_gap:.3}s: sim {:.3} vs testbed {:.3}",
        sim.addon_stats.total_mean_swap_secs(),
        testbed.addon_stats.total_mean_swap_secs()
    );
    let viol_gap = (testbed.violation_ratio - sim.violation_ratio).abs();
    assert!(viol_gap < 0.30, "violation gap {viol_gap:.3}");
}

#[test]
fn simulator_and_cluster_agree_for_clipper_light() {
    let system = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };
    let trace = Trace::constant(6.0, SimDuration::from_secs(40)).unwrap();
    let settings = RunSettings::new(Policy::ClipperLight, 6.0);
    let sim = run_trace(runtime(), &system, &settings, &trace);
    let testbed = run_cluster(
        runtime(),
        &ClusterConfig {
            system,
            time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
        },
        &settings,
        &trace,
    );
    // Light-only serving is overload-free: both should report ~0 violations
    // and identical quality (same images, same prompts).
    assert!(sim.violation_ratio < 0.02);
    assert!(testbed.violation_ratio < 0.05);
    let fid_gap = (testbed.fid - sim.fid).abs() / sim.fid;
    assert!(fid_gap < 0.10, "fid gap {fid_gap}");
}
