//! Add-on subsystem properties.
//!
//! Two promises are proven here:
//! 1. **Deterministic eviction** (property): a worker's bounded LRU module
//!    cache is a pure function of its admit sequence — replaying the same
//!    seeded query stream reproduces the same swap charges, the same
//!    resident set in the same recency order, and the same memory use,
//!    while never exceeding the budget or holding duplicates.
//! 2. **End-to-end determinism**: a full serving run with add-ons enabled
//!    (style-shift flash crowd included) is bit-reproducible — identical
//!    hit/miss/swap accounting and identical system-level metrics.

use diffserve::prelude::*;
use diffserve_simkit::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::sync::OnceLock;

fn runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            1500,
            2024,
            DiscriminatorConfig {
                train_prompts: 500,
                epochs: 10,
                ..Default::default()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property (satellite 3): LRU eviction is deterministic under seeded
    /// query streams. The stream comes from the same stateless per-query
    /// draw the engines use, so this is exactly the admit order a worker
    /// would see if every query landed on it.
    #[test]
    fn lru_eviction_is_deterministic_under_seeded_streams(
        seed in 0u64..10_000,
        n_modules in 2usize..16,
        budget_slots in 1usize..6,
        queries in 50u64..400,
    ) {
        let catalog = AddonCatalog::demo(n_modules);
        // Roughly `budget_slots` modules fit (demo footprints are
        // 256–512 MB); small budgets force constant eviction.
        let budget = 384.0 * budget_slots as f64;
        let mix = AddonMix::new(seed, n_modules, 0.8);
        let stream = |cache: &mut ModuleCache| -> Vec<u64> {
            let mut swaps = Vec::new();
            for qid in 0..queries {
                let at = SimTime::from_secs_f64(qid as f64 * 0.05);
                if let Some(id) = mix.draw(qid, at) {
                    swaps.push(cache.admit(id, &catalog).to_bits());
                }
            }
            swaps
        };
        let mut a = ModuleCache::new(budget);
        let mut b = ModuleCache::new(budget);
        let swaps_a = stream(&mut a);
        let swaps_b = stream(&mut b);
        prop_assert!(!swaps_a.is_empty(), "80% adoption must draw something");
        // Same stream, same history: swap charges, resident set (in
        // recency order), and memory use are all bitwise equal.
        prop_assert_eq!(swaps_a, swaps_b);
        prop_assert_eq!(
            a.resident().collect::<Vec<_>>(),
            b.resident().collect::<Vec<_>>()
        );
        prop_assert_eq!(a.used_mb().to_bits(), b.used_mb().to_bits());
        // Invariants: never over budget, never a duplicate resident.
        prop_assert!(a.used_mb() <= budget);
        let res: Vec<usize> = a.resident().collect();
        let mut dedup = res.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), res.len(), "duplicate resident module");
    }
}

#[test]
fn addon_serving_run_is_bit_reproducible() {
    let system = SystemConfig {
        num_workers: 8,
        addons: Some(AddonsConfig::demo(2024)),
        ..Default::default()
    };
    let base = Trace::constant(6.0, SimDuration::from_secs(50)).unwrap();
    let scenario = style_shift_flash_crowd(&base, 9);
    let settings = RunSettings::new(Policy::DiffServe, base.max_qps() * 2.5);

    let a = run_scenario(runtime(), &system, &settings, &scenario);
    let b = run_scenario(runtime(), &system, &settings, &scenario);

    assert!(
        a.addon_stats.total_lookups() > 0,
        "the mix must attach add-ons"
    );
    assert_eq!(a.addon_stats.hits, b.addon_stats.hits);
    assert_eq!(a.addon_stats.misses, b.addon_stats.misses);
    assert_eq!(
        a.addon_stats.swap_secs[0].to_bits(),
        b.addon_stats.swap_secs[0].to_bits()
    );
    assert_eq!(
        a.addon_stats.swap_secs[1].to_bits(),
        b.addon_stats.swap_secs[1].to_bits()
    );
    assert_eq!(a.total_queries, b.total_queries);
    assert_eq!(a.violation_ratio.to_bits(), b.violation_ratio.to_bits());
    assert_eq!(a.mean_latency.to_bits(), b.mean_latency.to_bits());
    assert_eq!(a.fid.to_bits(), b.fid.to_bits());
}
