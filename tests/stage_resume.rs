//! Stage-level micro-serving scaffold: escalated queries resume heavy-tier
//! denoising from the light tier's latents instead of regenerating from
//! scratch.
//!
//! Three promises are proven here:
//! 1. **Zero-reuse equivalence** (property): with resume enabled but a step
//!    credit of zero, the staged pipeline is *bit-identical* to the
//!    monolithic restart cascade across seeds, policies, and scenarios —
//!    the resume path is a strict superset, not a fork.
//! 2. **The escalation dividend**: with a real step credit, escalated
//!    queries finish measurably faster and burn measurably less GPU time
//!    per query, at equal-or-better FID and SLO numbers.
//! 3. **Exact residual arithmetic**: a resumed heavy pass serves exactly
//!    `exec_latency(1) − resume_savings(..)` — the savings come off the
//!    nameplate, not out of thin air.

use diffserve::prelude::*;
use diffserve_simkit::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::sync::OnceLock;

fn runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            1500,
            2024,
            DiscriminatorConfig {
                train_prompts: 500,
                epochs: 10,
                ..Default::default()
            },
        )
    })
}

fn system() -> SystemConfig {
    SystemConfig {
        num_workers: 8,
        ..Default::default()
    }
}

fn flat(qps: f64, secs: u64) -> Trace {
    Trace::constant(qps, SimDuration::from_secs(secs)).unwrap()
}

/// Bitwise report equality over every aggregate and series, including the
/// stage-serving additions.
fn assert_reports_bit_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.total_queries, b.total_queries, "{what}: total");
    assert_eq!(a.completed, b.completed, "{what}: completed");
    assert_eq!(a.dropped, b.dropped, "{what}: dropped");
    assert_eq!(a.late, b.late, "{what}: late");
    assert_eq!(
        a.violation_ratio.to_bits(),
        b.violation_ratio.to_bits(),
        "{what}: violation ratio"
    );
    assert_eq!(
        a.mean_latency.to_bits(),
        b.mean_latency.to_bits(),
        "{what}: mean latency"
    );
    assert_eq!(a.fid.to_bits(), b.fid.to_bits(), "{what}: fid");
    assert_eq!(
        a.heavy_fraction.to_bits(),
        b.heavy_fraction.to_bits(),
        "{what}: heavy fraction"
    );
    assert_eq!(
        a.mean_heavy_latency.to_bits(),
        b.mean_heavy_latency.to_bits(),
        "{what}: mean heavy latency"
    );
    assert_eq!(
        a.gpu_time_per_query.to_bits(),
        b.gpu_time_per_query.to_bits(),
        "{what}: gpu time per query"
    );
    assert_eq!(a.resumed_queries, b.resumed_queries, "{what}: resumed");
    assert_eq!(
        a.mean_reused_steps.to_bits(),
        b.mean_reused_steps.to_bits(),
        "{what}: mean reused steps"
    );
    assert_eq!(a.fid_series, b.fid_series, "{what}: fid series");
    assert_eq!(
        a.violation_series, b.violation_series,
        "{what}: violation series"
    );
    assert_eq!(a.demand_series, b.demand_series, "{what}: demand series");
    assert_eq!(
        a.threshold_series, b.threshold_series,
        "{what}: threshold series"
    );
    assert_eq!(a.incident_log, b.incident_log, "{what}: incident log");
}

/// A perturbation mix for the equivalence property: steady, a brownout, or
/// a flash-crowd-with-failure — the shapes that exercise every dispatch
/// path (drop-front, degradation slowdown, re-routing).
fn pick_scenario(kind: usize, qps: f64) -> Scenario {
    match kind {
        0 => Scenario::new("steady", flat(qps, 60)),
        1 => {
            Scenario::new("brownout", flat(qps, 60)).worker_degrade(SimTime::from_secs(15), 4, 2.5)
        }
        _ => Scenario::new("failure", flat(qps, 60))
            .worker_fail(SimTime::from_secs(20), 2)
            .worker_recover(SimTime::from_secs(40), 2),
    }
}

fn pick_policy(kind: usize) -> Policy {
    match kind {
        0 => Policy::DiffServe,
        1 => Policy::ClipperHeavy,
        _ => Policy::Proteus,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property (satellite 1): resume enabled with `resume_step_credit = 0`
    /// reuses zero steps, so the staged pipeline must produce *bit-identical*
    /// outcomes to the monolithic restart cascade — across seeds, demand
    /// levels, policies, and perturbation shapes.
    #[test]
    fn zero_step_credit_resume_is_bit_identical_to_restart(
        seed in 0u64..10_000,
        qps in 3.0f64..8.0,
        scen in 0usize..3,
        policy in 0usize..3,
    ) {
        let scenario = pick_scenario(scen, qps);
        let settings = RunSettings::new(pick_policy(policy), qps + 2.0);
        let mut restart_sys = system();
        restart_sys.seed = seed;
        let mut resume_sys = restart_sys.clone();
        resume_sys.resume_from_latents = true;
        resume_sys.resume_step_credit = 0.0;
        // A configured penalty must be inert at zero reuse: no query resumes,
        // so no query may be penalized.
        resume_sys.resume_quality_penalty = 0.3;

        let restart = run_scenario(runtime(), &restart_sys, &settings, &scenario);
        let resume = run_scenario(runtime(), &resume_sys, &settings, &scenario);
        prop_assert_eq!(resume.resumed_queries, 0);
        assert_reports_bit_identical(&restart, &resume, "zero-credit resume");
    }
}

/// The tentpole's acceptance numbers on the simulator: with resume enabled,
/// escalated queries complete faster end-to-end and cost less GPU time per
/// query than restart escalation, at equal-or-better FID and SLO numbers.
#[test]
fn resume_beats_restart_on_heavy_latency_and_gpu_time() {
    let settings = RunSettings::new(Policy::DiffServe, 8.0);
    let scenario = Scenario::new("steady", flat(6.0, 90));
    let restart_sys = system();
    let mut resume_sys = restart_sys.clone();
    resume_sys.resume_from_latents = true;

    let restart = run_scenario(runtime(), &restart_sys, &settings, &scenario);
    let resume = run_scenario(runtime(), &resume_sys, &settings, &scenario);

    assert!(
        restart.heavy_fraction > 0.05,
        "workload must actually escalate: heavy fraction {}",
        restart.heavy_fraction
    );
    assert_eq!(restart.resumed_queries, 0, "restart mode must never resume");
    assert!(
        resume.resumed_queries > 0,
        "resume mode must resume escalated queries"
    );
    assert!(
        resume.mean_reused_steps > 0.0,
        "resumed queries must skip denoise steps"
    );
    assert!(
        resume.mean_heavy_latency < restart.mean_heavy_latency,
        "resume must cut escalated latency: {} vs {}",
        resume.mean_heavy_latency,
        restart.mean_heavy_latency
    );
    assert!(
        resume.gpu_time_per_query < restart.gpu_time_per_query,
        "resume must cut GPU time per query: {} vs {}",
        resume.gpu_time_per_query,
        restart.gpu_time_per_query
    );
    // Lossless hand-off (default penalty 0.0): the resumed heavy image is
    // bit-identical to the restarted one, so quality may only move through
    // second-order control decisions — hold it to equal-or-better with a
    // small tolerance for those.
    assert!(
        resume.fid <= restart.fid * 1.02,
        "resume must not cost quality: fid {} vs {}",
        resume.fid,
        restart.fid
    );
    assert!(
        resume.violation_ratio <= restart.violation_ratio,
        "a faster escalation path cannot violate more: {} vs {}",
        resume.violation_ratio,
        restart.violation_ratio
    );
}

/// Exact residual arithmetic on an idle fleet: a resumed heavy pass serves
/// `exec_latency(1) − resume_savings(profile, reused, steps)`, where
/// `reused = reused_steps(heavy_steps, state, credit)` — measured end to
/// end through the public session API.
#[test]
fn resumed_service_time_is_nameplate_minus_savings() {
    let mut sys = system();
    sys.resume_from_latents = true;
    sys.slo = SimDuration::from_secs(60); // never drop; we measure service
    let mut session = ServingSession::builder()
        .runtime(runtime())
        .config(sys.clone())
        .policy(Policy::ClipperHeavy)
        .build()
        .expect("valid session");

    let heavy = &runtime().spec.heavy;
    let state = StageState::completed(runtime().spec.light.steps());
    let reused = reused_steps(heavy.steps(), state, sys.resume_step_credit);
    assert!(
        reused >= 1 && reused < heavy.steps(),
        "credit 0.5 must reuse some but not all steps: {reused}"
    );
    let savings = resume_savings(heavy.latency(), reused, heavy.steps());
    assert!(savings > 0.0);

    // Two sequential single-query batches: one restarted, one resumed.
    session.submit_spec(QuerySpec::new().at(SimTime::ZERO));
    session.run_until(SimTime::from_secs(30));
    session.submit_spec(
        QuerySpec::new()
            .at(SimTime::from_secs(30))
            .resume_from(state),
    );
    session.run_until(SimTime::from_secs(60));
    let outcomes = session.poll();
    let latencies: Vec<f64> = outcomes
        .iter()
        .map(|o| match o {
            QueryOutcome::Completed(r) => r.latency_secs(),
            QueryOutcome::Dropped { .. } => panic!("nothing may drop at this SLO"),
        })
        .collect();
    assert_eq!(latencies.len(), 2);
    let nameplate = heavy.latency().exec_latency(1).as_secs_f64();
    assert!(
        (latencies[0] - nameplate).abs() < 1e-9,
        "restarted query must serve the nameplate: {} vs {nameplate}",
        latencies[0]
    );
    assert!(
        (latencies[1] - (nameplate - savings)).abs() < 1e-9,
        "resumed query must serve nameplate minus savings: {} vs {}",
        latencies[1],
        nameplate - savings
    );

    // The per-query GPU accounting matches the same arithmetic.
    let gpu: Vec<f64> = outcomes
        .iter()
        .map(|o| match o {
            QueryOutcome::Completed(r) => r.gpu_time,
            QueryOutcome::Dropped { .. } => unreachable!(),
        })
        .collect();
    assert!((gpu[0] - nameplate).abs() < 1e-12);
    assert!((gpu[1] - (nameplate - savings)).abs() < 1e-12);
}

/// Session snapshots expose the per-stage latency split and a live resumed
/// counter, on both engines' shared snapshot type.
#[test]
fn snapshot_reports_stage_breakdown_and_resume_counter() {
    let mut sys = system();
    sys.resume_from_latents = true;
    let mut session = ServingSession::builder()
        .runtime(runtime())
        .config(sys.clone())
        .policy(Policy::DiffServe)
        .build()
        .expect("valid session");
    let trace = flat(6.0, 60);
    session.replay_trace(&trace);
    session.run_until(SimTime::from_secs(60) + sys.slo * 4);
    let snap = session.snapshot();

    for (name, stage, exec1) in [
        (
            "light",
            snap.light_stage_latency,
            runtime().spec.light.latency().exec_latency(1).as_secs_f64(),
        ),
        (
            "heavy",
            snap.heavy_stage_latency,
            runtime().spec.heavy.latency().exec_latency(1).as_secs_f64(),
        ),
    ] {
        assert!(
            (stage.total() - exec1).abs() < 1e-12,
            "{name}: stage breakdown must sum to the single-query latency"
        );
        assert!(stage.encode > 0.0 && stage.denoise > 0.0 && stage.decode > 0.0);
        assert!(
            stage.denoise > stage.encode + stage.decode,
            "{name}: denoising dominates a diffusion pipeline"
        );
    }

    assert!(
        snap.resumed_completions > 0,
        "escalations under resume must show up in the live counter"
    );
    let report = session.finish();
    assert_eq!(
        report.resumed_queries, snap.resumed_completions,
        "final snapshot and report must agree on resumed count"
    );
}
