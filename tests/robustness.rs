//! Robustness / failure-injection tests: overload, demand square waves, and
//! burst overlays. The system must degrade gracefully — shed load with
//! drops rather than let latency grow unboundedly — and keep exact
//! accounting through every regime.

use diffserve::prelude::*;
use diffserve::workload::{bursty_arrivals, BurstConfig};
use diffserve_simkit::time::SimDuration;
use std::sync::OnceLock;

fn runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            1500,
            777,
            DiscriminatorConfig {
                train_prompts: 500,
                epochs: 10,
                ..Default::default()
            },
        )
    })
}

#[test]
fn overload_sheds_load_instead_of_queueing_forever() {
    // 60 QPS against 8 workers is far beyond even light-only capacity with
    // small batches; DiffServe must drop to protect latency.
    let config = SystemConfig {
        num_workers: 8,
        ..Default::default()
    };
    let trace = Trace::constant(60.0, SimDuration::from_secs(40)).unwrap();
    let report = run_trace(
        runtime(),
        &config,
        &RunSettings::new(Policy::DiffServe, 60.0),
        &trace,
    );
    assert_eq!(report.completed + report.dropped, report.total_queries);
    // Completed queries must still be mostly within the SLO: the whole
    // point of dropping is protecting completion latency.
    assert!(
        report.mean_latency < config.slo.as_secs_f64() * 1.2,
        "mean completion latency exploded: {}",
        report.mean_latency
    );
    assert!(report.dropped > 0, "overload must shed load");
}

#[test]
fn square_wave_demand_is_tracked() {
    // Alternate 4 QPS and 26 QPS every 30 s: the controller must ride the
    // steps without blowing the SLO on the rising edges.
    let mut bins = Vec::new();
    for cycle in 0..3 {
        let rate = if cycle % 2 == 0 { 4.0 } else { 26.0 };
        bins.extend(std::iter::repeat_n(rate, 30));
    }
    let trace = Trace::from_qps(bins, SimDuration::from_secs(1)).unwrap();
    let config = SystemConfig::default();
    let report = run_trace(
        runtime(),
        &config,
        &RunSettings::new(Policy::DiffServe, 26.0),
        &trace,
    );
    assert!(
        report.violation_ratio < 0.15,
        "square wave broke the SLO: {}",
        report.violation_ratio
    );
    assert_eq!(report.completed + report.dropped, report.total_queries);
}

#[test]
fn burst_overlay_increases_arrivals_but_keeps_invariants() {
    // The horizon must span many calm/burst cycles (mean cycle = 48 s under
    // the default config) or a single long calm sojourn can erase the
    // uplift for an unlucky seed.
    let base = Trace::constant(10.0, SimDuration::from_secs(600)).unwrap();
    let config = BurstConfig::default();
    let plain = poisson_arrivals(&base, &mut seeded_rng(3));
    let bursty = bursty_arrivals(&base, &config, &mut seeded_rng(3));
    assert!(
        bursty.len() as f64 > plain.len() as f64 * 1.05,
        "bursts should add arrivals: {} vs {}",
        bursty.len(),
        plain.len()
    );
    for w in bursty.windows(2) {
        assert!(w[0] <= w[1], "arrivals must be sorted");
    }
}

#[test]
fn tiny_cluster_still_serves_with_degraded_quality() {
    // 2 workers is the minimum (one per tier): the system must still run.
    let config = SystemConfig {
        num_workers: 2,
        ..Default::default()
    };
    let trace = Trace::constant(3.0, SimDuration::from_secs(40)).unwrap();
    let report = run_trace(
        runtime(),
        &config,
        &RunSettings::new(Policy::DiffServe, 3.0),
        &trace,
    );
    assert_eq!(report.completed + report.dropped, report.total_queries);
    assert!(
        report.completed > 0,
        "a 2-worker cluster must still complete queries"
    );
}

#[test]
fn zero_demand_tail_is_harmless() {
    // Demand that dies mid-trace: the controller must not wedge on a zero
    // demand estimate.
    let mut bins = vec![8.0; 30];
    bins.extend(vec![0.0; 30]);
    bins.extend(vec![8.0; 30]);
    let trace = Trace::from_qps(bins, SimDuration::from_secs(1)).unwrap();
    let report = run_trace(
        runtime(),
        &SystemConfig::default(),
        &RunSettings::new(Policy::DiffServe, 8.0),
        &trace,
    );
    assert_eq!(report.completed + report.dropped, report.total_queries);
    assert!(
        report.violation_ratio < 0.1,
        "viol {}",
        report.violation_ratio
    );
}
