//! Stress-scenario integration suite: one [`Scenario`] value drives both
//! the discrete-event simulator and the thread-based testbed, and DiffServe
//! must degrade gracefully under capacity churn — the regime where
//! query-aware adaptation should beat static provisioning.

use diffserve::prelude::*;
use diffserve_simkit::time::{SimDuration, SimTime};
use std::sync::OnceLock;

fn runtime() -> &'static CascadeRuntime {
    static RT: OnceLock<CascadeRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        CascadeRuntime::prepare(
            cascade1(FeatureSpec::default()),
            1500,
            2024,
            DiscriminatorConfig {
                train_prompts: 500,
                epochs: 10,
                ..Default::default()
            },
        )
    })
}

fn system() -> SystemConfig {
    SystemConfig {
        num_workers: 8,
        ..Default::default()
    }
}

/// The named mid-run failure scenario shared by the parity and
/// graceful-degradation tests: two of eight workers fail-stop a third of
/// the way in and rejoin much later.
fn failover_scenario(secs: u64) -> Scenario {
    let base = Trace::constant(6.0, SimDuration::from_secs(secs)).unwrap();
    Scenario::new("worker-failure", base)
        .worker_fail(SimTime::from_secs(secs / 3), 2)
        .worker_recover(SimTime::from_secs(secs * 5 / 6), 2)
}

#[test]
fn diffserve_beats_static_baseline_under_worker_failure() {
    let sys = system();
    let scenario = failover_scenario(150);
    let dynamic = run_scenario(
        runtime(),
        &sys,
        &RunSettings::new(Policy::DiffServe, 6.0),
        &scenario,
    );
    let static_ = run_scenario(
        runtime(),
        &sys,
        &RunSettings::new(Policy::DiffServeStatic, 6.0),
        &scenario,
    );
    // The static baseline is provisioned for peak on the *full* fleet and
    // never re-solves; after a 2x worker failure its fixed threshold keeps
    // deferring more than the surviving heavy pool can serve. DiffServe's
    // controller re-solves against the shrunken pool and sheds deferrals
    // instead of deadlines.
    assert!(
        dynamic.violation_ratio < static_.violation_ratio,
        "DiffServe {} should beat static {} under 2x worker failure",
        dynamic.violation_ratio,
        static_.violation_ratio
    );
    assert!(
        dynamic.violation_ratio < 0.15,
        "DiffServe should degrade gracefully, got {}",
        dynamic.violation_ratio
    );
}

#[test]
fn one_scenario_value_drives_simulator_and_cluster() {
    let sys = system();
    let scenario = failover_scenario(60);
    let settings = RunSettings::new(Policy::DiffServe, 6.0);

    let sim = run_scenario(runtime(), &sys, &settings, &scenario);
    let testbed = run_cluster_scenario(
        runtime(),
        &ClusterConfig {
            system: sys.clone(),
            time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
        },
        &settings,
        &scenario,
    );

    // Identical arrival streams (both draw from the scenario's effective
    // trace with the same seed).
    assert_eq!(sim.total_queries, testbed.total_queries);
    assert!(sim.total_queries > 150);
    assert_eq!(testbed.completed + testbed.dropped, testbed.total_queries);

    // Coarse agreement on quality and violations despite churn (the fig6
    // validation tolerance, loosened for the stressed regime).
    let fid_gap = (testbed.fid - sim.fid).abs() / sim.fid;
    assert!(
        fid_gap < 0.3,
        "FID gap {fid_gap:.3}: sim {:.2} vs testbed {:.2}",
        sim.fid,
        testbed.fid
    );
    let viol_gap = (testbed.violation_ratio - sim.violation_ratio).abs();
    assert!(viol_gap < 0.35, "violation gap {viol_gap:.3}");
}

/// PR 4 added `cascading_failure` but only scenario-tested the sim path;
/// one scenario value must drive both engines through the correlated-fault
/// regime with coarse agreement — and both reports must carry a populated
/// threshold series and an incident log with every fired perturbation.
#[test]
fn cascading_failure_parity_between_simulator_and_cluster() {
    let sys = system();
    let base = Trace::constant(6.0, SimDuration::from_secs(60)).unwrap();
    let scenario = Scenario::new("cascading-failure", base)
        .cascading_failure(SimTime::from_secs(18), 1, 2, SimDuration::from_secs(9))
        .worker_recover(SimTime::from_secs(42), 3);
    let settings = RunSettings::new(Policy::DiffServe, 6.0);

    let sim = run_scenario(runtime(), &sys, &settings, &scenario);
    let testbed = run_cluster_scenario(
        runtime(),
        &ClusterConfig {
            system: sys.clone(),
            time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
        },
        &settings,
        &scenario,
    );

    assert_eq!(sim.total_queries, testbed.total_queries);
    assert_eq!(testbed.completed + testbed.dropped, testbed.total_queries);
    let fid_gap = (testbed.fid - sim.fid).abs() / sim.fid;
    assert!(fid_gap < 0.3, "FID gap {fid_gap:.3}");
    let viol_gap = (testbed.violation_ratio - sim.violation_ratio).abs();
    assert!(viol_gap < 0.35, "violation gap {viol_gap:.3}");
    // Both engines log the full scheduled timeline (3 fails + 1 recover).
    assert_eq!(sim.incident_log.len(), 4, "{:?}", sim.incident_log);
    assert_eq!(testbed.incident_log.len(), 4, "{:?}", testbed.incident_log);
    assert!(!sim.threshold_series.is_empty());
    assert!(!testbed.threshold_series.is_empty());
}

/// Brownout parity: a partial degradation (not a fail-stop) must slow both
/// engines comparably — degraded workers sleep-scale on the testbed and
/// stretch service times in the simulator — while every query is conserved.
#[test]
fn brownout_parity_between_simulator_and_cluster() {
    let sys = system();
    let base = Trace::constant(6.0, SimDuration::from_secs(60)).unwrap();
    let scenario = Scenario::new("brownout", base)
        .worker_degrade(SimTime::from_secs(18), 4, 2.0)
        .worker_restore(SimTime::from_secs(42), 4);
    let settings = RunSettings::new(Policy::DiffServe, 6.0);

    let sim = run_scenario(runtime(), &sys, &settings, &scenario);
    let testbed = run_cluster_scenario(
        runtime(),
        &ClusterConfig {
            system: sys.clone(),
            time_scale: if cfg!(debug_assertions) { 0.05 } else { 0.01 },
        },
        &settings,
        &scenario,
    );

    assert_eq!(sim.total_queries, testbed.total_queries);
    assert_eq!(testbed.completed + testbed.dropped, testbed.total_queries);
    let fid_gap = (testbed.fid - sim.fid).abs() / sim.fid;
    assert!(fid_gap < 0.3, "FID gap {fid_gap:.3}");
    let viol_gap = (testbed.violation_ratio - sim.violation_ratio).abs();
    assert!(viol_gap < 0.35, "violation gap {viol_gap:.3}");
    assert_eq!(sim.incident_log.len(), 2);
    assert_eq!(testbed.incident_log.len(), 2);
    assert!(!testbed.threshold_series.is_empty());
}

#[test]
fn standard_library_runs_end_to_end_for_diffserve() {
    let sys = system();
    let base = Trace::constant(5.0, SimDuration::from_secs(60)).unwrap();
    for scenario in standard_scenarios(&base, sys.num_workers) {
        let report = run_scenario(
            runtime(),
            &sys,
            &RunSettings::new(Policy::DiffServe, 14.0),
            &scenario,
        );
        assert_eq!(
            report.completed + report.dropped,
            report.total_queries,
            "{} leaked queries",
            scenario.name()
        );
        assert!(report.fid.is_finite(), "{} lost FID", scenario.name());
    }
}

/// The paper keeps updating `f(t)` online (§4.2): under a difficulty shift
/// the true deferral curve moves, the offline-profiled controller keeps
/// solving against the stale curve and over-commits the heavy tier, while
/// the online estimator tracks the shifted curve. At equal worker budget
/// the online controller must land a strictly lower SLO-violation ratio,
/// and its deferral-estimation-error series must shrink back after the
/// shift while the offline controller's stays elevated.
#[test]
fn online_deferral_estimation_beats_offline_under_difficulty_shift() {
    let offline_cfg = system();
    let online_cfg = SystemConfig {
        online_profile_refresh: true,
        online_profile_window: 128,
        online_profile_min_samples: 48,
        ..offline_cfg.clone()
    };
    let secs = 150u64;
    let shift_at = secs / 4;
    let scenario = Scenario::new(
        "difficulty-shift",
        Trace::constant(8.0, SimDuration::from_secs(secs)).unwrap(),
    )
    .difficulty_shift(SimTime::from_secs(shift_at), 0.45);
    let settings = RunSettings::new(Policy::DiffServe, 8.0);

    let offline = run_scenario(runtime(), &offline_cfg, &settings, &scenario);
    let online = run_scenario(runtime(), &online_cfg, &settings, &scenario);

    // Equal worker budget, strictly fewer violations — with margin, so a
    // controller regression cannot hide inside seed noise.
    assert!(
        online.violation_ratio < offline.violation_ratio * 0.6,
        "online {} must beat offline {} under a difficulty shift",
        online.violation_ratio,
        offline.violation_ratio
    );

    // The estimation-error series tells the mechanism story: both
    // controllers see the error spike when the curve moves, but only the
    // online estimator's error shrinks back as its window absorbs the
    // shifted distribution.
    let mean_err = |r: &RunReport, from: f64, to: f64| {
        let w: Vec<f64> = r
            .deferral_error_series
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, e)| e)
            .collect();
        assert!(!w.is_empty(), "no error points in [{from}, {to})");
        w.iter().sum::<f64>() / w.len() as f64
    };
    let shift = shift_at as f64;
    let end = secs as f64;
    let online_after = mean_err(&online, shift, shift + 20.0);
    let online_tail = mean_err(&online, shift + 40.0, end);
    assert!(
        online_tail < online_after * 0.8,
        "online estimation error must shrink after the shift: \
         tail {online_tail:.3} vs just-after {online_after:.3}"
    );
    let offline_tail = mean_err(&offline, shift + 40.0, end);
    assert!(
        online_tail < offline_tail,
        "the tracking controller must out-estimate the stale profile: \
         online tail {online_tail:.3} vs offline tail {offline_tail:.3}"
    );
}

#[test]
fn recovery_time_is_measurable_after_flash_crowd() {
    let sys = system();
    let base = Trace::constant(4.0, SimDuration::from_secs(120)).unwrap();
    let scenario = Scenario::new("crowd", base).flash_crowd(
        SimTime::from_secs(40),
        SimDuration::from_secs(5),
        SimDuration::from_secs(20),
        4.0,
    );
    let report = run_scenario(
        runtime(),
        &sys,
        &RunSettings::new(Policy::DiffServe, 16.0),
        &scenario,
    );
    // The spike ends by t = 70s; violations must return to near-zero within
    // the run, and the recovery metric must see it.
    let onset = scenario.perturbation_onsets()[0];
    let recovery = report.recovery_time_after(onset, 0.1);
    assert!(
        recovery.is_some(),
        "never recovered: {:?}",
        report.violation_series
    );
}
