//! Old-vs-new API parity: the batch entry points (`run_trace`,
//! `run_scenario`) are thin wrappers over a [`ServingSession`], and a
//! hand-driven session with the same seed must produce a **bit-identical**
//! `RunReport` — even when driven in small increments with observers
//! attached and outcomes polled mid-run. This is the contract that lets
//! applications migrate to the incremental API without re-validating any
//! experiment.

use diffserve::prelude::*;

fn runtime() -> CascadeRuntime {
    CascadeRuntime::prepare(
        cascade1(FeatureSpec::default()),
        1200,
        2024,
        DiscriminatorConfig {
            train_prompts: 500,
            epochs: 8,
            ..Default::default()
        },
    )
}

fn config() -> SystemConfig {
    SystemConfig {
        num_workers: 8,
        metrics_window: SimDuration::from_secs(10),
        ..Default::default()
    }
}

/// Asserts two reports are bit-identical in every scalar and series.
fn assert_reports_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.total_queries, b.total_queries, "{what}: total");
    assert_eq!(a.completed, b.completed, "{what}: completed");
    assert_eq!(a.dropped, b.dropped, "{what}: dropped");
    assert_eq!(a.late, b.late, "{what}: late");
    assert_eq!(
        a.violation_ratio.to_bits(),
        b.violation_ratio.to_bits(),
        "{what}: violation ratio"
    );
    assert_eq!(
        a.mean_latency.to_bits(),
        b.mean_latency.to_bits(),
        "{what}: mean latency"
    );
    assert_eq!(a.fid.to_bits(), b.fid.to_bits(), "{what}: fid");
    assert_eq!(
        a.mean_windowed_fid.to_bits(),
        b.mean_windowed_fid.to_bits(),
        "{what}: mean windowed fid"
    );
    assert_eq!(
        a.heavy_fraction.to_bits(),
        b.heavy_fraction.to_bits(),
        "{what}: heavy fraction"
    );
    assert_eq!(a.fid_series, b.fid_series, "{what}: fid series");
    assert_eq!(
        a.violation_series, b.violation_series,
        "{what}: violation series"
    );
    assert_eq!(a.demand_series, b.demand_series, "{what}: demand series");
    assert_eq!(
        a.threshold_series, b.threshold_series,
        "{what}: threshold series"
    );
    assert_eq!(
        a.deferral_error_series, b.deferral_error_series,
        "{what}: deferral error series"
    );
}

/// Hand-drives a simulator session the way an application would — chunked
/// `run_until` advances, observers attached, outcomes polled mid-run — and
/// returns its report.
fn hand_driven(
    rt: &CascadeRuntime,
    cfg: &SystemConfig,
    settings: &RunSettings,
    scenario: Option<&Scenario>,
    trace: &Trace,
) -> RunReport {
    let mut builder = ServingSession::builder()
        .runtime(rt)
        .config(cfg.clone())
        .settings(settings.clone())
        .backend(Backend::Sim);
    if let Some(s) = scenario {
        builder = builder.scenario(s.clone());
    }
    let mut session = builder.build().expect("valid session");
    session.observer(|snap| {
        // Live taps must not perturb the run.
        assert!(snap.threshold.is_finite());
    });
    let submitted = session.replay_trace(trace);
    let horizon = SimTime::ZERO + trace.duration() + cfg.slo * 4;
    // Advance in uneven chunks, polling outcomes as they stream out.
    let mut outcomes = Vec::new();
    let mut t = SimTime::ZERO;
    let mut step = 7;
    while t < horizon {
        t = (t + SimDuration::from_secs(step)).min(horizon);
        step = if step == 7 { 11 } else { 7 };
        session.run_until(t);
        outcomes.extend(session.poll());
    }
    let report = session.finish();
    assert_eq!(
        outcomes.len() as u64,
        submitted,
        "every submitted query polls out exactly once before finish \
         (completions and pre-horizon drops)"
    );
    report
}

#[test]
fn run_trace_matches_hand_driven_session_diffserve() {
    let rt = runtime();
    let cfg = config();
    let trace = Trace::constant(5.0, SimDuration::from_secs(45)).unwrap();
    let settings = RunSettings::new(Policy::DiffServe, 8.0);
    let legacy = run_trace(&rt, &cfg, &settings, &trace);
    let session = hand_driven(&rt, &cfg, &settings, None, &trace);
    assert_reports_identical(&legacy, &session, "DiffServe");
    assert!(legacy.total_queries > 100);
}

#[test]
fn run_trace_matches_hand_driven_session_proteus() {
    // Proteus exercises the routing RNG, so parity here proves the seeded
    // streams line up across the two drive styles too.
    let rt = runtime();
    let cfg = config();
    let trace = Trace::constant(5.0, SimDuration::from_secs(45)).unwrap();
    let settings = RunSettings::new(Policy::Proteus, 8.0);
    let legacy = run_trace(&rt, &cfg, &settings, &trace);
    let session = hand_driven(&rt, &cfg, &settings, None, &trace);
    assert_reports_identical(&legacy, &session, "Proteus");
}

#[test]
fn run_trace_matches_hand_driven_session_clipper_light() {
    let rt = runtime();
    let cfg = config();
    let trace = Trace::constant(5.0, SimDuration::from_secs(45)).unwrap();
    let settings = RunSettings::new(Policy::ClipperLight, 8.0);
    let legacy = run_trace(&rt, &cfg, &settings, &trace);
    let session = hand_driven(&rt, &cfg, &settings, None, &trace);
    assert_reports_identical(&legacy, &session, "Clipper-Light");
}

#[test]
fn run_scenario_matches_hand_driven_session_with_online_estimator() {
    // The online deferral estimator is part of the shared control plane, so
    // enabling it must preserve the batch-vs-incremental parity contract:
    // the profile refreshes from the same deterministic confidence stream
    // either way, and the reports — including the new estimation-error
    // series — stay bit-identical.
    let rt = runtime();
    let cfg = SystemConfig {
        online_profile_refresh: true,
        online_profile_window: 128,
        online_profile_min_samples: 32,
        ..config()
    };
    let base = Trace::constant(5.0, SimDuration::from_secs(60)).unwrap();
    let scenario = Scenario::new("hard", base).difficulty_shift(SimTime::from_secs(20), 0.35);
    let settings = RunSettings::new(Policy::DiffServe, 8.0);
    let legacy = run_scenario(&rt, &cfg, &settings, &scenario);
    let effective = scenario.effective_trace();
    let session = hand_driven(&rt, &cfg, &settings, Some(&scenario), &effective);
    assert_reports_identical(&legacy, &session, "online estimator");
    assert!(
        !legacy.deferral_error_series.is_empty(),
        "estimation-error series must be recorded"
    );
}

#[test]
fn run_scenario_matches_hand_driven_session_under_churn() {
    let rt = runtime();
    let cfg = config();
    let base = Trace::constant(5.0, SimDuration::from_secs(60)).unwrap();
    let scenario = Scenario::new("churn", base)
        .worker_fail(SimTime::from_secs(20), 2)
        .worker_recover(SimTime::from_secs(40), 2)
        .difficulty_shift(SimTime::from_secs(30), 0.2);
    let settings = RunSettings::new(Policy::DiffServe, 8.0);
    let legacy = run_scenario(&rt, &cfg, &settings, &scenario);
    let effective = scenario.effective_trace();
    let session = hand_driven(&rt, &cfg, &settings, Some(&scenario), &effective);
    assert_reports_identical(&legacy, &session, "churn scenario");
    assert!(legacy.total_queries > 100);
}
