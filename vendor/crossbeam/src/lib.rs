//! Offline stand-in for the subset of the `crossbeam` API this workspace
//! uses: multi-producer channels with timeout-aware receives.

pub mod channel;
