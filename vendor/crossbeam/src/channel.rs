//! An unbounded MPMC channel built on `Mutex<VecDeque>` + `Condvar`.
//!
//! API-compatible with `crossbeam::channel` for the operations this
//! workspace uses: [`unbounded`], [`Sender::send`], [`Receiver::recv`],
//! [`Receiver::recv_timeout`], [`Receiver::try_recv`], and
//! [`Receiver::is_empty`]. Disconnection is tracked by live sender/receiver
//! counts, matching crossbeam's semantics (receives drain buffered messages
//! before reporting disconnection).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        available: Condvar::new(),
    });
    (Sender(Arc::clone(&inner)), Receiver(inner))
}

/// The sending half of a channel.
pub struct Sender<T>(Arc<Inner<T>>);

/// The receiving half of a channel.
pub struct Receiver<T>(Arc<Inner<T>>);

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// All senders disconnected and the channel is drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders disconnected and the channel is drained.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders disconnected and the channel is drained.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvError {}
impl std::error::Error for RecvTimeoutError {}
impl std::error::Error for TryRecvError {}

impl<T> Sender<T> {
    /// Enqueues a message, failing if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.0.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.0.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().unwrap().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.0.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.0.state.lock().unwrap();
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            state = self.0.available.wait(state).unwrap();
        }
    }

    /// Receives a message, blocking for at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.0.state.lock().unwrap();
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (s, wait) = self
                .0
                .available
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = s;
            if wait.timed_out() && state.queue.is_empty() {
                return if state.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Receives a message if one is already queued.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.0.state.lock().unwrap();
        match state.queue.pop_front() {
            Some(v) => Ok(v),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Whether the channel currently holds no messages.
    pub fn is_empty(&self) -> bool {
        self.0.state.lock().unwrap().queue.is_empty()
    }

    /// Number of currently queued messages.
    pub fn len(&self) -> usize {
        self.0.state.lock().unwrap().queue.len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().unwrap().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.state.lock().unwrap().receivers -= 1;
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn sends_and_receives_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 100);
        for i in 0..100 {
            assert_eq!(rx.try_recv().unwrap(), i);
        }
        assert!(rx.is_empty());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn timeout_then_delivery_across_threads() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(7u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        handle.join().unwrap();
    }

    #[test]
    fn disconnection_is_reported_after_drain() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1u8).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5u8).is_err());
    }
}
