//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! small wall-clock benchmark harness with criterion's calling convention:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It calibrates an iteration count per benchmark
//! and reports mean time per iteration; there is no statistical analysis or
//! HTML report.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; accepted for API compatibility, the
/// stand-in always times routine invocations individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One input per measured batch.
    PerIteration,
}

/// Benchmark driver handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// One completed benchmark: its id and the measured mean time per
/// iteration.
///
/// Real criterion persists estimates under `target/criterion` for external
/// tooling; the stand-in instead keeps completed measurements in memory and
/// exposes them via [`Criterion::measurements`] so harness binaries (the
/// `perf` baseline exporter) can serialize them.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark id as passed to [`Criterion::bench_function`] (group
    /// benchmarks are qualified as `group/id`).
    pub id: String,
    /// Mean wall-clock seconds per iteration.
    pub mean_secs: f64,
    /// Iterations the mean was taken over.
    pub iters: u64,
}

/// Top-level benchmark registry.
#[derive(Debug)]
pub struct Criterion {
    target_time: Duration,
    max_iters: u64,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(300),
            max_iters: 10_000,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibrate: time one iteration, then scale to the budget.
        let mut probe = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut probe);
        let per_iter = probe.elapsed.max(Duration::from_nanos(1));
        let iters = (self.target_time.as_nanos() / per_iter.as_nanos())
            .clamp(1, self.max_iters as u128) as u64;
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        println!(
            "{id:<55} {:>12.3} us/iter ({} iters)",
            mean * 1e6,
            bencher.iters
        );
        self.measurements.push(Measurement {
            id: id.to_string(),
            mean_secs: mean,
            iters: bencher.iters,
        });
        self
    }

    /// Every benchmark completed so far, in execution order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in harness calibrates its
    /// own iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.target_time = t;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let qualified = format!("{}/{id}", self.name);
        self.criterion.bench_function(&qualified, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` / `cargo bench` pass harness flags (e.g. --bench,
            // --test) that a harness=false binary receives verbatim; run the
            // benches regardless, they are cheap under the stand-in harness.
            $($group();)+
        }
    };
}
