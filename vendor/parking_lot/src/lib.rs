//! Offline stand-in for the subset of the `parking_lot` API this workspace
//! uses: [`RwLock`] and [`Mutex`] with non-poisoning, guard-returning
//! `lock`/`read`/`write`, implemented over `std::sync`.

use std::fmt;

/// Reader–writer lock whose `read`/`write` return guards directly (a
/// poisoned std lock is recovered transparently, matching parking_lot's
/// no-poisoning semantics).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Mutual-exclusion lock whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() = 2;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
