//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of the `rand` surface it relies
//! on: [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits with `gen`, `gen_range`, and
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. The streams differ from the
//! real `rand` crate's, but every consumer in this workspace only requires
//! determinism per seed, not a specific stream.

pub mod rngs;
pub mod seq;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (SplitMix64 state expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits, used by
/// [`Rng::gen`].
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Maps 64 random bits to a double in `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as i128) + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                ((lo as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the (exclusive) upper bound.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
            let n = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&n));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
