//! Sequence-related random operations.

use crate::{Rng, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_from(&mut *rng);
            self.swap(i, j);
        }
    }

    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item> {
        if self.is_empty() {
            None
        } else {
            self.get((0..self.len()).sample_from(&mut *rng))
        }
    }
}
