//! Collection strategies.

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// Generates vectors with lengths drawn from `len` and elements from `elem`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
