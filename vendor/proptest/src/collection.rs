//! Collection strategies.

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// Generates vectors with lengths drawn from `len` and elements from `elem`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    /// Prefix truncations toward the minimum length: the front half first
    /// (binary search on length), then one element off the back.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let min = self.len.start;
        let n = value.len();
        if n <= min {
            return Vec::new();
        }
        let mut out = Vec::new();
        let half = min.max(n / 2);
        if half < n {
            out.push(value[..half].to_vec());
        }
        if n - 1 != half {
            out.push(value[..n - 1].to_vec());
        }
        out
    }
}
