//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! deterministic miniature of proptest: the [`proptest!`] macro expands each
//! property into a `#[test]` that samples its [`Strategy`] arguments from a
//! seeded RNG for [`ProptestConfig::cases`] iterations. Supported strategies
//! are numeric ranges (`lo..hi`, `lo..=hi`) and [`collection::vec`].
//!
//! # Shrinking
//!
//! When a case fails, the driver minimizes it before reporting: each
//! argument is greedily replaced by the simplest [`Strategy::shrink`]
//! candidate that still fails, looping until no argument can shrink further.
//! Scalars binary-search toward their range start; vectors shrink by prefix
//! truncation. The minimal case is printed (arguments must implement
//! `Debug`) and then re-run uncaught so the regular assertion message
//! surfaces. Panics are hooked process-wide during the shrink search, so a
//! concurrently failing test in the same binary may lose its panic message
//! (it still fails) — the usual cost of a test-global hook.

use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Per-property configuration (only `cases` is honored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the heavier numeric
        // properties in this workspace fast while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test-case RNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Creates an RNG for the property named `name` (seed derived from the
    /// name, so every property gets an independent, stable stream).
    pub fn for_property(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        let mut s = h;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A double in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Simpler candidates to try in place of a failing `value`, ordered
    /// simplest-first. The driver accepts the first candidate that still
    /// fails and calls `shrink` again on it, so returning the range start,
    /// a midpoint, and a decrement yields binary-search convergence. The
    /// default never shrinks.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Shrink candidates for an integer in a range starting at `lo`: the range
/// start (simplest), the midpoint toward it (binary search), and a
/// decrement (final linear approach once bisection overshoots).
macro_rules! int_shrink {
    ($t:ty, $lo:expr, $value:expr) => {{
        let lo: $t = $lo;
        let value: $t = $value;
        if value <= lo {
            Vec::new()
        } else {
            let mut out = vec![lo];
            let mid = lo + (value - lo) / 2;
            if mid != lo && mid != value {
                out.push(mid);
            }
            let dec = value - 1;
            if dec != lo && dec != mid {
                out.push(dec);
            }
            out
        }
    }};
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as i128) + offset as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink!($t, self.start, *value)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                ((lo as i128) + offset as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink!($t, *self.start(), *value)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v < self.end { v } else { self.start }
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                // `<= lo` or NaN: nothing simpler to offer.
                if *value <= lo || value.is_nan() {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (*value - lo) / 2.0;
                if mid > lo && mid < *value {
                    out.push(mid);
                }
                out
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::run_property(
                $cfg,
                stringify!($name),
                &($($strat,)+),
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// The property driver behind [`proptest!`]: samples `cases` inputs from
/// `strat`, and on the first failure greedily minimizes it (accept the
/// first [`Strategy::shrink`] candidate that still fails, repeat until no
/// candidate fails) before re-running the minimal case uncaught so the
/// regular assertion message reports it.
#[doc(hidden)]
pub fn run_property<S, F>(cfg: ProptestConfig, name: &str, strat: &S, prop: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(S::Value),
{
    let mut rng = TestRng::for_property(name);
    for _ in 0..cfg.cases {
        let value = strat.generate(&mut rng);
        let run = |v: S::Value| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(v)));
        if run(value.clone()).is_ok() {
            continue;
        }
        let mut current = value;
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        loop {
            let mut advanced = false;
            for cand in strat.shrink(&current) {
                if run(cand.clone()).is_err() {
                    current = cand;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        std::panic::set_hook(prev_hook);
        eprintln!("proptest: minimal failing case for `{name}`: {current:?}");
        prop(current);
        unreachable!("shrunken case no longer fails");
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident / $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone,)+
        {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            /// One-component-at-a-time shrinks: every candidate simplifies
            /// exactly one position toward its range start, so greedy
            /// acceptance strictly decreases a well-founded measure and the
            /// driver's loop terminates.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);

/// Asserts a condition inside a property (panics on failure, which the
/// driver intercepts to shrink the case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn ranges_in_bounds(x in 1.0f64..50.0, n in 1usize..20, s in 0u64..5000) {
            prop_assert!((1.0..50.0).contains(&x));
            prop_assert!((1..20).contains(&n));
            prop_assert!(s < 5000);
        }

        fn vec_strategy_lengths(xs in crate::collection::vec(-1e3f64..1e3, 1..100)) {
            prop_assert!((1..100).contains(&xs.len()));
            prop_assert!(xs.iter().all(|v| (-1e3..1e3).contains(v)));
        }
    }

    #[test]
    fn int_shrink_offers_start_midpoint_and_decrement() {
        let s = 0u64..5000;
        let c = Strategy::shrink(&s, &4000);
        assert_eq!(c, vec![0, 2000, 3999]);
        assert!(Strategy::shrink(&s, &0).is_empty());
        let signed = -100i32..100;
        assert_eq!(Strategy::shrink(&signed, &50), vec![-100, -25, 49]);
    }

    #[test]
    fn float_shrink_bisects_toward_range_start() {
        let s = 1.0f64..50.0;
        let c = Strategy::shrink(&s, &33.0);
        assert_eq!(c, vec![1.0, 17.0]);
        assert!(Strategy::shrink(&s, &1.0).is_empty());
    }

    #[test]
    fn vec_shrink_truncates_prefixes_only() {
        let s = crate::collection::vec(0u32..10, 2..100);
        let v: Vec<u32> = vec![7, 3, 9, 1, 5, 2];
        let c = Strategy::shrink(&s, &v);
        assert_eq!(c, vec![vec![7, 3, 9], vec![7, 3, 9, 1, 5]]);
        assert!(Strategy::shrink(&s, &vec![7, 3]).is_empty());
    }

    #[test]
    fn greedy_shrink_converges_to_the_minimal_counterexample() {
        // The driver's loop in miniature: property "x < 100" has minimal
        // counterexample exactly 100, which bisection plus the final
        // decrement walk must land on.
        let strat = 0u64..5000;
        let fails = |x: u64| x >= 100;
        let mut x = 4321u64;
        assert!(fails(x));
        let mut progress = true;
        while progress {
            progress = false;
            loop {
                let mut advanced = false;
                for cand in Strategy::shrink(&strat, &x) {
                    if fails(cand) {
                        x = cand;
                        advanced = true;
                        progress = true;
                        break;
                    }
                }
                if !advanced {
                    break;
                }
            }
        }
        assert_eq!(x, 100);
    }

    #[test]
    fn property_streams_are_deterministic() {
        let mut a = crate::TestRng::for_property("p");
        let mut b = crate::TestRng::for_property("p");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_property("q");
        assert_ne!(crate::TestRng::for_property("p").next_u64(), c.next_u64());
    }
}
