//! # DiffServe — query-aware model scaling for diffusion serving
//!
//! A from-scratch Rust reproduction of **"DiffServe: Efficiently Serving
//! Text-to-Image Diffusion Models with Query-Aware Model Scaling"**
//! (MLSys 2025).
//!
//! DiffServe serves text-to-image queries through a *cascade*: a fast,
//! lightweight diffusion model renders every query first; a learned
//! discriminator scores each output's realism; outputs that clear a
//! confidence threshold are returned immediately, and only the rest pay for
//! the heavyweight model. A controller re-solves a MILP every few seconds
//! to pick the threshold, worker split, and batch sizes that maximize
//! response quality under throughput and latency-SLO constraints.
//!
//! This crate is the workspace facade — it re-exports every subsystem:
//!
//! | crate | role |
//! |-------|------|
//! | [`simkit`] | discrete-event engine, seeded distributions, online stats |
//! | [`linalg`] | dense matrices, eigendecomposition, PSD matrix sqrt |
//! | [`nn`] | MLP substrate for the discriminator |
//! | [`milp`] | LP (simplex) + MILP (branch & bound) solver |
//! | [`workload`] | traces, Poisson arrivals, Azure-style diurnal curves |
//! | [`imagegen`] | synthetic diffusion-model zoo + discriminator + scorers |
//! | [`metrics`] | exact Fréchet distance (FID), SLO accounting |
//! | [`serving`] | the serving system: cascade, workers, controller, policies |
//! | [`cluster`] | thread-based testbed runtime |
//!
//! # Quickstart
//!
//! ```no_run
//! use diffserve::prelude::*;
//!
//! // Prepare Cascade 1 (SD-Turbo → SDv1.5): synthesize the dataset, train
//! // the discriminator, profile the deferral curve f(t).
//! let runtime = CascadeRuntime::prepare(
//!     cascade1(FeatureSpec::default()),
//!     5000,
//!     42,
//!     DiscriminatorConfig::default(),
//! );
//!
//! // Serve a diurnal trace with the full DiffServe policy on 16 workers.
//! let trace = synthesize_azure_trace(&AzureTraceConfig::default())?;
//! let report = run_trace(
//!     &runtime,
//!     &SystemConfig::default(),
//!     &RunSettings::new(Policy::DiffServe, trace.max_qps()),
//!     &trace,
//! );
//! println!("{}", report.summary());
//! # Ok::<(), diffserve::workload::TraceError>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and the substitutions made for
//! GPU-bound components, and `EXPERIMENTS.md` for paper-vs-measured results
//! of every table and figure.

#![warn(missing_docs)]

pub use diffserve_cluster as cluster;
pub use diffserve_core as serving;
pub use diffserve_imagegen as imagegen;
pub use diffserve_linalg as linalg;
pub use diffserve_metrics as metrics;
pub use diffserve_milp as milp;
pub use diffserve_nn as nn;
pub use diffserve_simkit as simkit;
pub use diffserve_trace as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use diffserve_cluster::{run_cluster, run_cluster_scenario, ClusterConfig};
    pub use diffserve_core::prelude::*;
    pub use diffserve_imagegen::prelude::*;
    pub use diffserve_metrics::{fid_score, GaussianStats, SloTracker};
    pub use diffserve_simkit::prelude::*;
    pub use diffserve_trace::{
        poisson_arrivals, standard_scenarios, synthesize_azure_trace, AzureTraceConfig,
        DemandEstimator, Perturbation, Scenario, Trace,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let spec = FeatureSpec::default();
        let c = cascade1(spec);
        assert_eq!(c.name, "sdturbo");
        assert!(SystemConfig::default().validate().is_ok());
    }
}
