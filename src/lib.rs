//! # DiffServe — query-aware model scaling for diffusion serving
//!
//! A from-scratch Rust reproduction of **"DiffServe: Efficiently Serving
//! Text-to-Image Diffusion Models with Query-Aware Model Scaling"**
//! (MLSys 2025).
//!
//! DiffServe serves text-to-image queries through a *cascade*: a fast,
//! lightweight diffusion model renders every query first; a learned
//! discriminator scores each output's realism; outputs that clear a
//! confidence threshold are returned immediately, and only the rest pay for
//! the heavyweight model. A controller re-solves a MILP every few seconds
//! to pick the threshold, worker split, and batch sizes that maximize
//! response quality under throughput and latency-SLO constraints.
//!
//! This crate is the workspace facade — it re-exports every subsystem:
//!
//! | crate | role |
//! |-------|------|
//! | [`simkit`] | discrete-event engine, seeded distributions, online stats |
//! | [`linalg`] | dense matrices, eigendecomposition, PSD matrix sqrt |
//! | [`nn`] | MLP substrate for the discriminator |
//! | [`milp`] | LP (simplex) + MILP (branch & bound) solver |
//! | [`workload`] | traces, Poisson arrivals, Azure-style diurnal curves |
//! | [`imagegen`] | synthetic diffusion-model zoo + discriminator + scorers |
//! | [`metrics`] | exact Fréchet distance (FID), SLO accounting |
//! | [`serving`] | the serving system: cascade, workers, controller, policies |
//! | [`cluster`] | thread-based testbed runtime |
//!
//! # Quickstart
//!
//! Serving runs through a [`ServingSession`](serving::ServingSession): a
//! fluent builder validates the whole configuration up front, then the
//! session is driven incrementally — submit queries, advance time, poll
//! outcomes, tap live metrics — and `finish()` yields the final
//! [`RunReport`](serving::RunReport):
//!
//! ```no_run
//! use diffserve::prelude::*;
//!
//! // Prepare Cascade 1 (SD-Turbo → SDv1.5): synthesize the dataset, train
//! // the discriminator, profile the deferral curve f(t).
//! let runtime = CascadeRuntime::prepare(
//!     cascade1(FeatureSpec::default()),
//!     5000,
//!     42,
//!     DiscriminatorConfig::default(),
//! );
//!
//! // Serve a diurnal trace with the full DiffServe policy on 16 workers.
//! let trace = synthesize_azure_trace(&AzureTraceConfig::default())?;
//! let mut session = ServingSession::builder()
//!     .runtime(&runtime)
//!     .config(SystemConfig::default())
//!     .policy(Policy::DiffServe)
//!     .backend(Backend::Sim)
//!     .build()?;
//! session.observer(|snap| {
//!     println!(
//!         "t={} threshold={:.2} queues={}/{}",
//!         snap.now, snap.threshold, snap.light_queue, snap.heavy_queue
//!     );
//! });
//! session.replay_trace(&trace);
//! session.run_until(SimTime::ZERO + trace.duration());
//! let report = session.finish();
//! println!("{}", report.summary());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The batch entry points (`run_trace`, `run_scenario`, `run_cluster`,
//! `run_cluster_scenario`) remain available as thin wrappers over a
//! session and produce identical reports. Swap `.build()` for
//! `.build_cluster(time_scale)` (from [`ClusterSessionExt`](cluster::ClusterSessionExt))
//! to drive the thread-based testbed through the same API.
//!
//! See `ARCHITECTURE.md` for the paper-to-code map (including the legacy →
//! session migration table), and `EXPERIMENTS.md` for paper-vs-measured
//! results of every table and figure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use diffserve_cluster as cluster;
pub use diffserve_core as serving;
pub use diffserve_imagegen as imagegen;
pub use diffserve_linalg as linalg;
pub use diffserve_metrics as metrics;
pub use diffserve_milp as milp;
pub use diffserve_nn as nn;
pub use diffserve_simkit as simkit;
pub use diffserve_trace as workload;

/// One-stop imports for applications.
///
/// Everything the quickstart needs compiles from `use diffserve::prelude::*`
/// alone: the session API (`ServingSession`, `Backend`, `QuerySpec`,
/// `SessionSnapshot`, …), both run paths' batch wrappers, the cluster
/// testbed types (`ClusterConfig`, `ServingPlan`,
/// `ClusterSessionExt::build_cluster`), and the workload/scenario builders.
pub mod prelude {
    pub use diffserve_cluster::{
        run_cluster, run_cluster_scenario, ClusterBackend, ClusterConfig, ClusterSessionExt,
        ServingPlan,
    };
    pub use diffserve_core::prelude::*;
    pub use diffserve_imagegen::prelude::*;
    pub use diffserve_metrics::{fid_score, GaussianStats, SloTracker};
    pub use diffserve_simkit::prelude::*;
    pub use diffserve_trace::{
        poisson_arrivals, standard_scenarios, style_shift_flash_crowd, synthesize_azure_trace,
        AddonMix, AzureTraceConfig, CapacityEvent, DemandEstimator, FleetHealth, Hazard,
        HazardProcess, Incident, IncidentLog, Perturbation, Scenario, ScenarioError, ScenarioEvent,
        Trace, TrendWindow,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let spec = FeatureSpec::default();
        let c = cascade1(spec);
        assert_eq!(c.name, "sdturbo");
        assert!(SystemConfig::default().validate().is_ok());
    }
}
